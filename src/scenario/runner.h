#ifndef NONSERIAL_SCENARIO_RUNNER_H_
#define NONSERIAL_SCENARIO_RUNNER_H_

#include <string>
#include <vector>

#include "classes/recognizers.h"
#include "common/report.h"
#include "common/status.h"
#include "predicate/value.h"
#include "scenario/scenario.h"
#include "schedule/schedule.h"

namespace nonserial {
namespace scenario {

/// Outcome of driving one interleaving of a scenario under one protocol.
struct ScenarioRunResult {
  std::string protocol;
  std::vector<Verdict> verdicts;  ///< One per session.
  ValueVector final_state;        ///< Latest committed snapshot.
  bool constraint_ok = true;      ///< Constraint holds over final_state.
  /// Committed-attempts history (TxId == session index), classified
  /// against the constraint objects.
  Schedule committed;
  ClassMembership classes;
  bool classes_exact = true;
  /// The PR 4 incremental CPC checker's verdict over the same history —
  /// must equal classes.cpc (the runner's built-in differential check).
  bool incremental_cpc = true;
  std::vector<std::string> log;  ///< Step trace (RunnerOptions::verbose).
};

struct RunnerOptions {
  bool verbose = false;
};

/// Runs one interleaving of `spec` under `protocol` (registry name) on a
/// fresh Engine hosting that protocol via EngineOptions::controller_factory.
/// Deterministic and single-threaded, in the documented driver-client
/// style: permutation entries are injected in order; each injection
/// authorizes one more step of its session, and a progress loop then runs
/// every session as far as its authorized, unblocked steps allow (so a
/// session whose step blocked executes it as soon as the protocol wakes
/// it, exactly like a real client would). Sessions whose programs cannot
/// finish get the kBlocked verdict and are rolled back at the end.
StatusOr<ScenarioRunResult> RunPermutation(const ScenarioSpec& spec,
                                           const std::vector<StepRef>& order,
                                           const std::string& protocol,
                                           const RunnerOptions& options = {});

/// Transport-independence check: runs the sessions concurrently through
/// the real Engine::OpenSession / Session API (one thread per session, no
/// permutation control — the OS schedules). Blocked steps are bounded by
/// max_blocked_us so the run always terminates. Classification runs over
/// the observed committed order.
StatusOr<ScenarioRunResult> RunConcurrentViaSessions(
    const ScenarioSpec& spec, const std::string& protocol,
    int64_t max_blocked_us = 2'000'000);

/// Checks `result` against one expect block; appends human-readable
/// mismatch lines to *failures. Returns true when every assertion holds.
bool CheckExpectation(const ScenarioSpec& spec, const Expectation& expect,
                      const ScenarioRunResult& result,
                      std::vector<std::string>* failures);

/// Renders the observed outcome as an authorable expect block
/// (`expect "CEP" { s1 commit ... }`) — the --print-expect authoring aid.
std::string FormatExpectation(const ScenarioSpec& spec,
                              const ScenarioRunResult& result);

/// Chaos replay of one interleaving under CEP + WAL: for every crash point
/// k (after k injections), run a fresh engine over a fresh log, inject k
/// steps, crash-kill, recover, and assert the recovered snapshot and
/// committed-transaction set match the pre-crash engine. Returns mismatch
/// lines (empty == pass).
///
/// `seed` seeds the failpoint registry before each crash point, so runs
/// with armed failpoints (media faults, net.* wire faults) replay
/// deterministically. `crash_point` >= 0 restricts the sweep to that one
/// point — the reproduce-a-single-failure knob behind run_scenarios
/// --crash-point.
StatusOr<std::vector<std::string>> RunChaosSweep(
    const ScenarioSpec& spec, const std::vector<StepRef>& order,
    uint64_t seed = 1, int crash_point = -1);

/// Suite orchestration shared by run_scenarios and the ctest suite.
struct SuiteOptions {
  /// Protocols to run (registry names); empty = all registered.
  std::vector<std::string> protocols;
  /// Replay every explicit permutation across crash/recover cycles.
  bool chaos = false;
  bool verbose = false;
  /// Collect observed expect blocks into SpecResult::printed.
  bool print_expect = false;
  /// Failpoint-registry seed for chaos runs (run_scenarios --seed).
  uint64_t chaos_seed = 1;
  /// Restrict the chaos sweep to one crash point; -1 = all of them
  /// (run_scenarios --crash-point).
  int chaos_crash_point = -1;
};

struct SpecResult {
  std::string name;
  int explicit_runs = 0;   ///< permutation x protocol runs driven.
  int sweep_runs = 0;      ///< all-permutations runs driven.
  int chaos_crash_points = 0;
  bool sweep_truncated = false;
  std::vector<std::string> failures;  ///< Empty == the spec passed.
  std::vector<std::string> printed;   ///< --print-expect output.
  Json row = Json::Object();          ///< REPORT_scenarios.json row.
  bool ok() const { return failures.empty(); }
};

/// Runs one spec end to end: every explicit permutation against every
/// selected protocol with its expect blocks asserted, the all-permutations
/// sweep (when enabled) with per-run invariants (terminating runs,
/// incremental == batch CPC), and the chaos sweep when requested.
StatusOr<SpecResult> RunSpec(const ScenarioSpec& spec,
                             const SuiteOptions& options = {});

}  // namespace scenario
}  // namespace nonserial

#endif  // NONSERIAL_SCENARIO_RUNNER_H_
