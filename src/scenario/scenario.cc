#include "scenario/scenario.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"

namespace nonserial {
namespace scenario {

std::string VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kCommit:
      return "commit";
    case Verdict::kAbort:
      return "abort";
    case Verdict::kBlocked:
      return "blocked";
  }
  return "?";
}

std::string ClassAssertionName(ClassAssertion::Cls cls) {
  switch (cls) {
    case ClassAssertion::Cls::kCsr:
      return "csr";
    case ClassAssertion::Cls::kSr:
      return "sr";
    case ClassAssertion::Cls::kCpc:
      return "cpc";
    case ClassAssertion::Cls::kPc:
      return "pc";
  }
  return "?";
}

int ScenarioSpec::EntityIndex(const std::string& entity_name) const {
  for (size_t i = 0; i < entity_names.size(); ++i) {
    if (entity_names[i] == entity_name) return static_cast<int>(i);
  }
  return -1;
}

int ScenarioSpec::SessionIndex(const std::string& session_name) const {
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (sessions[i].name == session_name) return static_cast<int>(i);
  }
  return -1;
}

const Step& ScenarioSpec::StepAt(const StepRef& ref) const {
  return sessions[ref.session].steps[ref.step];
}

bool ScenarioSpec::FindStep(const std::string& step_name, StepRef* out) const {
  for (size_t s = 0; s < sessions.size(); ++s) {
    for (size_t i = 0; i < sessions[s].steps.size(); ++i) {
      if (sessions[s].steps[i].name == step_name) {
        *out = StepRef{static_cast<int>(s), static_cast<int>(i)};
        return true;
      }
    }
  }
  return false;
}

int ScenarioSpec::TotalSteps() const {
  int n = 0;
  for (const SessionSpec& s : sessions) n += static_cast<int>(s.steps.size());
  return n;
}

namespace {

Status SpecError(int line, const std::string& message) {
  if (line > 0) {
    return Status::InvalidArgument(StrCat("line ", line, ": ", message));
  }
  return Status::InvalidArgument(message);
}

}  // namespace

Status ValidateSpec(const ScenarioSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("scenario has no name");
  }
  if (spec.entity_names.empty()) {
    return Status::InvalidArgument(
        StrCat("scenario '", spec.name, "': setup declares no entities"));
  }
  if (spec.sessions.empty()) {
    return Status::InvalidArgument(
        StrCat("scenario '", spec.name, "': no sessions declared"));
  }
  if (!spec.figure2_class.empty() && spec.figure2_class != "sr" &&
      spec.figure2_class != "pc" && spec.figure2_class != "cpc" &&
      spec.figure2_class != "incorrect") {
    return Status::InvalidArgument(
        StrCat("scenario '", spec.name, "': class '", spec.figure2_class,
               "' is not one of sr, pc, cpc, incorrect"));
  }
  // Step programs: shape, entity discipline, globally unique step names.
  std::set<std::string> step_names;
  for (size_t si = 0; si < spec.sessions.size(); ++si) {
    const SessionSpec& session = spec.sessions[si];
    if (session.steps.empty()) {
      return SpecError(session.line, StrCat("session '", session.name,
                                            "' has no steps"));
    }
    for (int pred : session.predecessors) {
      if (pred < 0 || pred >= static_cast<int>(si)) {
        return SpecError(
            session.line,
            StrCat("session '", session.name,
                   "': 'after' must name an earlier-declared session "
                   "(transaction ids follow declaration order)"));
      }
    }
    std::set<EntityId> input_entities = session.input.Entities();
    std::set<EntityId> read_so_far;
    for (size_t i = 0; i < session.steps.size(); ++i) {
      const Step& step = session.steps[i];
      if (!step_names.insert(step.name).second) {
        return SpecError(step.line, StrCat("duplicate step name '", step.name,
                                           "' (step names are global: "
                                           "permutation lines reference them)"));
      }
      if (step.kind == Step::Kind::kBegin && i != 0) {
        return SpecError(step.line,
                         StrCat("step '", step.name,
                                "': begin must be the session's first step"));
      }
      bool terminal = step.kind == Step::Kind::kCommit ||
                      step.kind == Step::Kind::kAbort;
      if (terminal && i + 1 != session.steps.size()) {
        return SpecError(step.line,
                         StrCat("step '", step.name,
                                "': commit/abort must be the last step"));
      }
      if (i + 1 == session.steps.size() && !terminal) {
        return SpecError(step.line,
                         StrCat("session '", session.name,
                                "' must end in a commit or abort step"));
      }
      if (step.kind == Step::Kind::kRead) {
        if (input_entities.count(step.entity) == 0) {
          return SpecError(
              step.line,
              StrCat("step '", step.name, "': session '", session.name,
                     "' reads '", spec.entity_names[step.entity],
                     "' but its input predicate does not mention it "
                     "(the model requires reads within I_t)"));
        }
        read_so_far.insert(step.entity);
      }
      if (step.kind == Step::Kind::kWrite) {
        std::set<EntityId> operands;
        step.write_expr.CollectReads(&operands);
        for (EntityId e : operands) {
          if (read_so_far.count(e) == 0) {
            return SpecError(
                step.line,
                StrCat("step '", step.name, "': write expression uses '",
                       spec.entity_names[e],
                       "' before the session has read it"));
          }
        }
      }
    }
  }
  // Interleavings: every permutation covers every step exactly once,
  // respecting per-session program order.
  if (spec.permutations.empty() && !spec.all_permutations.enabled) {
    return Status::InvalidArgument(
        StrCat("scenario '", spec.name,
               "': no permutation lines and no all-permutations mode — "
               "nothing to run"));
  }
  for (const Permutation& perm : spec.permutations) {
    std::vector<int> cursor(spec.sessions.size(), 0);
    for (const StepRef& ref : perm.order) {
      if (ref.session < 0 ||
          ref.session >= static_cast<int>(spec.sessions.size()) ||
          ref.step < 0 ||
          ref.step >=
              static_cast<int>(spec.sessions[ref.session].steps.size())) {
        return SpecError(perm.line, "permutation references an unknown step");
      }
      if (ref.step != cursor[ref.session]) {
        return SpecError(
            perm.line,
            StrCat("permutation lists step '", spec.StepAt(ref).name,
                   "' out of its session's program order"));
      }
      ++cursor[ref.session];
    }
    for (size_t s = 0; s < spec.sessions.size(); ++s) {
      if (cursor[s] != static_cast<int>(spec.sessions[s].steps.size())) {
        return SpecError(perm.line,
                         StrCat("permutation is missing steps of session '",
                                spec.sessions[s].name, "'"));
      }
    }
    for (const Expectation& expect : perm.expectations) {
      if (expect.verdicts.size() != spec.sessions.size()) {
        return SpecError(expect.line,
                         StrCat("expect block for '", expect.protocol,
                                "' must list a verdict for every session"));
      }
      for (const auto& [entity, value] : expect.final_state) {
        (void)value;
        if (entity < 0 ||
            entity >= static_cast<EntityId>(spec.entity_names.size())) {
          return SpecError(expect.line, "final-state entity out of range");
        }
      }
    }
  }
  if (spec.all_permutations.enabled && spec.all_permutations.max_runs <= 0) {
    return Status::InvalidArgument(
        StrCat("scenario '", spec.name, "': max-runs must be positive"));
  }
  return Status::OK();
}

std::vector<StepRef> SerialOrder(const ScenarioSpec& spec) {
  std::vector<StepRef> order;
  for (size_t s = 0; s < spec.sessions.size(); ++s) {
    for (size_t i = 0; i < spec.sessions[s].steps.size(); ++i) {
      order.push_back(StepRef{static_cast<int>(s), static_cast<int>(i)});
    }
  }
  return order;
}

namespace {

/// Conservative commutation test used by the symmetry pruning: only data
/// operations on distinct entities that share no constraint object commute
/// under every registered protocol (per-object timestamp clocks and lock
/// groups make same-object accesses order-sensitive even across entities).
bool StepsCommute(const ScenarioSpec& spec,
                  const std::vector<std::vector<int>>& objects_of,
                  const Step& a, const Step& b) {
  auto is_data = [](const Step& s) {
    return s.kind == Step::Kind::kRead || s.kind == Step::Kind::kWrite;
  };
  if (!is_data(a) || !is_data(b)) return false;
  if (a.entity == b.entity) return false;
  for (int oa : objects_of[a.entity]) {
    for (int ob : objects_of[b.entity]) {
      if (oa == ob) return false;
    }
  }
  (void)spec;
  return true;
}

}  // namespace

std::vector<std::vector<StepRef>> EnumerateInterleavings(
    const ScenarioSpec& spec, int max_runs, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  // objects_of[e]: indices of constraint objects containing entity e.
  ObjectSetList objects = spec.Objects();
  std::vector<std::vector<int>> objects_of(spec.entity_names.size());
  for (size_t o = 0; o < objects.size(); ++o) {
    for (EntityId e : objects[o]) {
      if (e >= 0 && e < static_cast<EntityId>(objects_of.size())) {
        objects_of[e].push_back(static_cast<int>(o));
      }
    }
  }

  std::vector<std::vector<StepRef>> out;
  std::vector<int> cursor(spec.sessions.size(), 0);
  std::vector<StepRef> current;
  const int total = spec.TotalSteps();
  bool stopped = false;

  // DFS over session frontiers. Canonical-form pruning: never place a step
  // immediately after a commuting step of a higher-numbered session — the
  // swapped order is equivalent and is (or was) emitted elsewhere.
  // Enumerate one past the cap: a (max_runs+1)-th interleaving proves the
  // cap actually dropped something (a cap landing exactly on the last
  // interleaving is not a truncation).
  auto dfs = [&](auto&& self) -> void {
    if (stopped) return;
    if (static_cast<int>(current.size()) == total) {
      if (static_cast<int>(out.size()) >= max_runs) {
        stopped = true;
        if (truncated != nullptr) *truncated = true;
        return;
      }
      out.push_back(current);
      return;
    }
    for (size_t s = 0; s < spec.sessions.size(); ++s) {
      if (cursor[s] >= static_cast<int>(spec.sessions[s].steps.size())) {
        continue;
      }
      StepRef ref{static_cast<int>(s), cursor[s]};
      if (!current.empty()) {
        const StepRef& prev = current.back();
        if (prev.session > ref.session &&
            StepsCommute(spec, objects_of, spec.StepAt(prev),
                         spec.StepAt(ref))) {
          continue;  // non-canonical: the swap was emitted under prev first
        }
      }
      current.push_back(ref);
      ++cursor[s];
      self(self);
      --cursor[s];
      current.pop_back();
      if (stopped) return;
    }
  };
  dfs(dfs);
  return out;
}

}  // namespace scenario
}  // namespace nonserial
