#include "scenario/parser.h"

#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "predicate/formula.h"

namespace nonserial {
namespace scenario {
namespace {

struct Token {
  enum class Kind : uint8_t { kIdent, kString, kInt, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;   ///< Identifier / string contents / punct character.
  int64_t value = 0;  ///< kInt.
  int line = 1;
};

Status ErrorAt(int line, const std::string& message) {
  return Status::InvalidArgument(StrCat("line ", line, ": ", message));
}

StatusOr<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {
      Token t;
      t.kind = Token::Kind::kString;
      t.line = line;
      ++i;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        t.text.push_back(text[i]);
        ++i;
      }
      if (i >= n || text[i] != '"') {
        return ErrorAt(line, "unterminated string (is the file truncated?)");
      }
      ++i;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t;
      t.kind = Token::Kind::kInt;
      t.line = line;
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      t.text = text.substr(start, i - start);
      int64_t value = 0;
      if (!ParseInt64(t.text, &value)) {
        return ErrorAt(line, StrCat("bad integer '", t.text, "'"));
      }
      t.value = value;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = Token::Kind::kIdent;
      t.line = line;
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      t.text = text.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '{' || c == '}' || c == '=' || c == '+' || c == '-' ||
        c == '*' || c == '(' || c == ')' || c == ',') {
      Token t;
      t.kind = Token::Kind::kPunct;
      t.line = line;
      t.text.push_back(c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return ErrorAt(line, StrCat("unexpected character '", std::string(1, c),
                                "'"));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.line = line;
  tokens.push_back(std::move(end));
  return tokens;
}

/// Keywords that start a top-level declaration; step names in permutation
/// lines may not collide with them (they terminate the name list).
bool IsTopLevelKeyword(const std::string& word) {
  return word == "scenario" || word == "description" || word == "class" ||
         word == "setup" || word == "session" || word == "permutation" ||
         word == "all";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ScenarioSpec> Parse() {
    while (!AtEnd()) {
      const Token& t = Peek();
      if (t.kind != Token::Kind::kIdent) {
        return ErrorAt(t.line, "expected a top-level declaration");
      }
      Status status = Status::OK();
      if (t.text == "scenario") {
        Next();
        status = ParseName(&spec_.name);
      } else if (t.text == "description") {
        Next();
        status = ExpectString(&spec_.description);
      } else if (t.text == "class") {
        Next();
        status = ParseName(&spec_.figure2_class);
      } else if (t.text == "setup") {
        Next();
        status = ParseSetup();
      } else if (t.text == "session") {
        Next();
        status = ParseSession();
      } else if (t.text == "permutation") {
        Next();
        status = ParsePermutation();
      } else if (t.text == "all") {
        status = ParseAllPermutations();
      } else {
        return ErrorAt(t.line,
                       StrCat("unknown top-level keyword '", t.text, "'"));
      }
      if (!status.ok()) return status;
    }
    Status valid = ValidateSpec(spec_);
    if (!valid.ok()) return valid;
    return std::move(spec_);
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // the kEnd sentinel
    return tokens_[i];
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }
  int Line() const { return Peek().line; }

  bool PeekPunct(const char* p, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == Token::Kind::kPunct && t.text == p;
  }

  Status ExpectPunct(const char* p) {
    if (!PeekPunct(p)) {
      if (AtEnd()) {
        return ErrorAt(Line(), StrCat("expected '", p,
                                      "' but the file ended (truncated?)"));
      }
      return ErrorAt(Line(), StrCat("expected '", p, "', found '",
                                    Peek().text, "'"));
    }
    Next();
    return Status::OK();
  }

  Status ExpectIdent(const char* what, std::string* out) {
    const Token& t = Peek();
    if (t.kind != Token::Kind::kIdent) {
      if (AtEnd()) {
        return ErrorAt(t.line, StrCat("expected ", what,
                                      " but the file ended (truncated?)"));
      }
      return ErrorAt(t.line, StrCat("expected ", what));
    }
    *out = t.text;
    Next();
    return Status::OK();
  }

  Status ExpectString(std::string* out) {
    const Token& t = Peek();
    if (t.kind != Token::Kind::kString) {
      return ErrorAt(t.line, "expected a quoted string");
    }
    *out = t.text;
    Next();
    return Status::OK();
  }

  /// A name: bare identifier or quoted string.
  Status ParseName(std::string* out) {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kString) {
      *out = t.text;
      Next();
      return Status::OK();
    }
    if (AtEnd()) {
      return ErrorAt(t.line, "expected a name but the file ended (truncated?)");
    }
    return ErrorAt(t.line, "expected a name (identifier or quoted string)");
  }

  Status ParseSignedInt(Value* out) {
    bool negative = false;
    if (PeekPunct("-")) {
      negative = true;
      Next();
    }
    const Token& t = Peek();
    if (t.kind != Token::Kind::kInt) {
      return ErrorAt(t.line, "expected an integer");
    }
    *out = negative ? -t.value : t.value;
    Next();
    return Status::OK();
  }

  StatusOr<EntityId> ResolveEntity(int line, const std::string& name) {
    int e = spec_.EntityIndex(name);
    if (e < 0) {
      return ErrorAt(line, StrCat("unknown entity '", name, "'"));
    }
    return static_cast<EntityId>(e);
  }

  /// Parses a quoted predicate string with the general boolean-formula
  /// grammar and converts it to CNF.
  Status ParsePredicateString(Predicate* out) {
    const Token& t = Peek();
    std::string text;
    Status s = ExpectString(&text);
    if (!s.ok()) return s;
    auto resolve = [this, &t](const std::string& name) {
      return ResolveEntity(t.line, name);
    };
    StatusOr<Formula> formula = ParseFormula(text, resolve);
    if (!formula.ok()) {
      return ErrorAt(t.line, StrCat("bad predicate \"", text,
                                    "\": ", formula.status().message()));
    }
    *out = formula->ToCnf();
    return Status::OK();
  }

  Status ParseSetup() {
    Status s = ExpectPunct("{");
    if (!s.ok()) return s;
    while (!PeekPunct("}")) {
      const Token& t = Peek();
      if (t.kind != Token::Kind::kIdent) {
        if (AtEnd()) {
          return ErrorAt(t.line, "setup block not closed (truncated file?)");
        }
        return ErrorAt(t.line, "expected 'entity' or 'constraint'");
      }
      if (t.text == "entity") {
        Next();
        std::string name;
        s = ExpectIdent("an entity name", &name);
        if (!s.ok()) return s;
        if (name == "min" || name == "max") {
          return ErrorAt(t.line, StrCat("entity name '", name,
                                        "' collides with a builtin function"));
        }
        if (spec_.EntityIndex(name) >= 0) {
          return ErrorAt(t.line, StrCat("duplicate entity '", name, "'"));
        }
        s = ExpectPunct("=");
        if (!s.ok()) return s;
        Value v = 0;
        s = ParseSignedInt(&v);
        if (!s.ok()) return s;
        spec_.entity_names.push_back(name);
        spec_.initial.push_back(v);
      } else if (t.text == "constraint") {
        Next();
        s = ParsePredicateString(&spec_.constraint);
        if (!s.ok()) return s;
      } else {
        return ErrorAt(t.line, StrCat("unknown setup keyword '", t.text, "'"));
      }
    }
    return ExpectPunct("}");
  }

  // --- write expressions ---------------------------------------------------
  // expr   := term (('+'|'-') term)*
  // term   := factor ('*' factor)*
  // factor := INT | '-' factor | '(' expr ')'
  //         | 'min' '(' expr ',' expr ')' | 'max' '(' expr ',' expr ')'
  //         | entity
  Status ParseExpr(Expr* out) {
    Status s = ParseTerm(out);
    if (!s.ok()) return s;
    while (PeekPunct("+") || PeekPunct("-")) {
      bool add = Peek().text == "+";
      Next();
      Expr rhs;
      s = ParseTerm(&rhs);
      if (!s.ok()) return s;
      *out = add ? Expr::Add(*out, rhs) : Expr::Sub(*out, rhs);
    }
    return Status::OK();
  }

  Status ParseTerm(Expr* out) {
    Status s = ParseFactor(out);
    if (!s.ok()) return s;
    while (PeekPunct("*")) {
      Next();
      Expr rhs;
      s = ParseFactor(&rhs);
      if (!s.ok()) return s;
      *out = Expr::Mul(*out, rhs);
    }
    return Status::OK();
  }

  Status ParseFactor(Expr* out) {
    const Token& t = Peek();
    if (t.kind == Token::Kind::kInt) {
      *out = Expr::Const(t.value);
      Next();
      return Status::OK();
    }
    if (PeekPunct("-")) {
      Next();
      Expr inner;
      Status s = ParseFactor(&inner);
      if (!s.ok()) return s;
      *out = Expr::Sub(Expr::Const(0), inner);
      return Status::OK();
    }
    if (PeekPunct("(")) {
      Next();
      Status s = ParseExpr(out);
      if (!s.ok()) return s;
      return ExpectPunct(")");
    }
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "min" || t.text == "max") {
        bool is_min = t.text == "min";
        Next();
        Status s = ExpectPunct("(");
        if (!s.ok()) return s;
        Expr a, b;
        s = ParseExpr(&a);
        if (!s.ok()) return s;
        s = ExpectPunct(",");
        if (!s.ok()) return s;
        s = ParseExpr(&b);
        if (!s.ok()) return s;
        s = ExpectPunct(")");
        if (!s.ok()) return s;
        *out = is_min ? Expr::Min(a, b) : Expr::Max(a, b);
        return Status::OK();
      }
      StatusOr<EntityId> e = ResolveEntity(t.line, t.text);
      if (!e.ok()) return e.status();
      *out = Expr::Var(*e);
      Next();
      return Status::OK();
    }
    if (AtEnd()) {
      return ErrorAt(t.line,
                     "expression ended with the file (truncated file?)");
    }
    return ErrorAt(t.line, StrCat("expected an expression, found '", t.text,
                                  "'"));
  }

  Status ParseStepBody(Step* step) {
    const Token& t = Peek();
    std::string op;
    Status s = ExpectIdent("a step operation", &op);
    if (!s.ok()) return s;
    if (op == "begin") {
      step->kind = Step::Kind::kBegin;
    } else if (op == "commit") {
      step->kind = Step::Kind::kCommit;
    } else if (op == "abort") {
      step->kind = Step::Kind::kAbort;
    } else if (op == "read") {
      step->kind = Step::Kind::kRead;
      std::string entity;
      s = ExpectIdent("an entity name", &entity);
      if (!s.ok()) return s;
      StatusOr<EntityId> e = ResolveEntity(t.line, entity);
      if (!e.ok()) return e.status();
      step->entity = *e;
    } else if (op == "write") {
      step->kind = Step::Kind::kWrite;
      std::string entity;
      s = ExpectIdent("an entity name", &entity);
      if (!s.ok()) return s;
      StatusOr<EntityId> e = ResolveEntity(t.line, entity);
      if (!e.ok()) return e.status();
      step->entity = *e;
      s = ExpectPunct("=");
      if (!s.ok()) return s;
      s = ParseExpr(&step->write_expr);
      if (!s.ok()) return s;
    } else {
      return ErrorAt(t.line,
                     StrCat("unknown step operation '", op,
                            "' (begin, read, write, commit, abort)"));
    }
    return Status::OK();
  }

  Status ParseSession() {
    SessionSpec session;
    session.line = Line();
    Status s = ParseName(&session.name);
    if (!s.ok()) return s;
    if (IsTopLevelKeyword(session.name) || session.name == "classes" ||
        session.name == "final") {
      return ErrorAt(session.line, StrCat("session name '", session.name,
                                          "' collides with a keyword"));
    }
    if (spec_.SessionIndex(session.name) >= 0) {
      return ErrorAt(session.line,
                     StrCat("duplicate session '", session.name, "'"));
    }
    s = ExpectPunct("{");
    if (!s.ok()) return s;
    while (!PeekPunct("}")) {
      const Token& t = Peek();
      if (t.kind != Token::Kind::kIdent) {
        if (AtEnd()) {
          return ErrorAt(t.line, "session block not closed (truncated file?)");
        }
        return ErrorAt(t.line, "expected 'after', 'input', 'output' or 'step'");
      }
      if (t.text == "after") {
        Next();
        std::string pred;
        s = ParseName(&pred);
        if (!s.ok()) return s;
        int idx = spec_.SessionIndex(pred);
        if (idx < 0) {
          return ErrorAt(t.line, StrCat("unknown session '", pred,
                                        "' ('after' must name an "
                                        "earlier-declared session)"));
        }
        session.predecessors.push_back(idx);
      } else if (t.text == "input") {
        Next();
        s = ParsePredicateString(&session.input);
        if (!s.ok()) return s;
      } else if (t.text == "output") {
        Next();
        s = ParsePredicateString(&session.output);
        if (!s.ok()) return s;
      } else if (t.text == "step") {
        Next();
        Step step;
        step.line = t.line;
        s = ParseName(&step.name);
        if (!s.ok()) return s;
        if (IsTopLevelKeyword(step.name)) {
          return ErrorAt(t.line, StrCat("step name '", step.name,
                                        "' collides with a keyword"));
        }
        s = ExpectPunct("{");
        if (!s.ok()) return s;
        s = ParseStepBody(&step);
        if (!s.ok()) return s;
        s = ExpectPunct("}");
        if (!s.ok()) return s;
        session.steps.push_back(std::move(step));
      } else {
        return ErrorAt(t.line,
                       StrCat("unknown session keyword '", t.text, "'"));
      }
    }
    s = ExpectPunct("}");
    if (!s.ok()) return s;
    spec_.sessions.push_back(std::move(session));
    return Status::OK();
  }

  Status ParsePermutation() {
    Permutation perm;
    perm.line = Line();
    std::vector<int> cursor(spec_.sessions.size(), 0);
    for (;;) {
      const Token& t = Peek();
      bool is_name = t.kind == Token::Kind::kString ||
                     (t.kind == Token::Kind::kIdent &&
                      !IsTopLevelKeyword(t.text));
      if (!is_name) break;
      StepRef ref;
      if (!spec_.FindStep(t.text, &ref)) {
        return ErrorAt(t.line, StrCat("unknown step '", t.text,
                                      "' in permutation"));
      }
      perm.order.push_back(ref);
      Next();
    }
    if (perm.order.empty()) {
      return ErrorAt(perm.line, "permutation lists no steps");
    }
    if (PeekPunct("{")) {
      Next();
      while (!PeekPunct("}")) {
        const Token& t = Peek();
        if (t.kind != Token::Kind::kIdent || t.text != "expect") {
          if (AtEnd()) {
            return ErrorAt(t.line,
                           "permutation block not closed (truncated file?)");
          }
          return ErrorAt(t.line, "expected 'expect'");
        }
        Next();
        Expectation expect;
        expect.line = t.line;
        Status s = ParseName(&expect.protocol);
        if (!s.ok()) return s;
        s = ParseExpectBody(&expect);
        if (!s.ok()) return s;
        perm.expectations.push_back(std::move(expect));
      }
      Status s = ExpectPunct("}");
      if (!s.ok()) return s;
    }
    spec_.permutations.push_back(std::move(perm));
    return Status::OK();
  }

  Status ParseExpectBody(Expectation* expect) {
    Status s = ExpectPunct("{");
    if (!s.ok()) return s;
    // Verdicts accumulate per session; default slots are filled with
    // kCommit but every session must be listed (ValidateSpec checks count).
    std::vector<bool> seen(spec_.sessions.size(), false);
    expect->verdicts.assign(spec_.sessions.size(), Verdict::kCommit);
    int listed = 0;
    while (!PeekPunct("}")) {
      const Token& t = Peek();
      if (t.kind == Token::Kind::kIdent && t.text == "classes") {
        Next();
        bool any = false;
        while (PeekPunct("+") || PeekPunct("-")) {
          bool expected = Peek().text == "+";
          Next();
          std::string cls;
          s = ExpectIdent("a class name (csr, sr, cpc, pc)", &cls);
          if (!s.ok()) return s;
          ClassAssertion assertion;
          assertion.expected = expected;
          if (cls == "csr") {
            assertion.cls = ClassAssertion::Cls::kCsr;
          } else if (cls == "sr") {
            assertion.cls = ClassAssertion::Cls::kSr;
          } else if (cls == "cpc") {
            assertion.cls = ClassAssertion::Cls::kCpc;
          } else if (cls == "pc") {
            assertion.cls = ClassAssertion::Cls::kPc;
          } else {
            return ErrorAt(t.line, StrCat("unknown class '", cls,
                                          "' (csr, sr, cpc, pc)"));
          }
          expect->classes.push_back(assertion);
          any = true;
        }
        if (!any) {
          return ErrorAt(t.line, "'classes' lists no +class/-class items");
        }
        continue;
      }
      if (t.kind == Token::Kind::kIdent && t.text == "final") {
        Next();
        bool any = false;
        while (Peek().kind == Token::Kind::kIdent && PeekPunct("=", 1)) {
          const Token& et = Peek();
          StatusOr<EntityId> e = ResolveEntity(et.line, et.text);
          if (!e.ok()) return e.status();
          Next();
          Next();  // '='
          Value v = 0;
          s = ParseSignedInt(&v);
          if (!s.ok()) return s;
          expect->final_state.emplace_back(*e, v);
          any = true;
        }
        if (!any) {
          return ErrorAt(t.line, "'final' lists no entity = value pairs");
        }
        continue;
      }
      if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kString) {
        int idx = spec_.SessionIndex(t.text);
        if (idx < 0) {
          return ErrorAt(t.line, StrCat("unknown session '", t.text,
                                        "' in expect block"));
        }
        Next();
        std::string verdict;
        s = ExpectIdent("a verdict (commit, abort, blocked)", &verdict);
        if (!s.ok()) return s;
        if (verdict == "commit") {
          expect->verdicts[idx] = Verdict::kCommit;
        } else if (verdict == "abort") {
          expect->verdicts[idx] = Verdict::kAbort;
        } else if (verdict == "blocked") {
          expect->verdicts[idx] = Verdict::kBlocked;
        } else {
          return ErrorAt(t.line, StrCat("unknown verdict '", verdict,
                                        "' (commit, abort, blocked)"));
        }
        if (!seen[idx]) {
          seen[idx] = true;
          ++listed;
        }
        continue;
      }
      if (AtEnd()) {
        return ErrorAt(t.line, "expect block not closed (truncated file?)");
      }
      return ErrorAt(t.line, "expected a session verdict, 'classes' or "
                             "'final'");
    }
    if (listed != static_cast<int>(spec_.sessions.size())) {
      return ErrorAt(expect->line,
                     StrCat("expect block for '", expect->protocol,
                            "' must list a verdict for every session"));
    }
    return ExpectPunct("}");
  }

  Status ParseAllPermutations() {
    // Tokens: 'all' '-' 'permutations' [ 'max' '-' 'runs' INT ]
    int line = Line();
    Next();  // all
    std::string word;
    Status s = ExpectPunct("-");
    if (!s.ok()) return s;
    s = ExpectIdent("'permutations'", &word);
    if (!s.ok()) return s;
    if (word != "permutations") {
      return ErrorAt(line, "expected 'all-permutations'");
    }
    spec_.all_permutations.enabled = true;
    if (Peek().kind == Token::Kind::kIdent && Peek().text == "max") {
      Next();
      s = ExpectPunct("-");
      if (!s.ok()) return s;
      s = ExpectIdent("'runs'", &word);
      if (!s.ok()) return s;
      if (word != "runs") return ErrorAt(line, "expected 'max-runs'");
      const Token& t = Peek();
      if (t.kind != Token::Kind::kInt) {
        return ErrorAt(t.line, "max-runs needs an integer");
      }
      spec_.all_permutations.max_runs = static_cast<int>(t.value);
      Next();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ScenarioSpec spec_;
};

}  // namespace

StatusOr<ScenarioSpec> ParseScenario(const std::string& text) {
  StatusOr<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(*std::move(tokens));
  return parser.Parse();
}

}  // namespace scenario
}  // namespace nonserial
