#ifndef NONSERIAL_SCENARIO_PARSER_H_
#define NONSERIAL_SCENARIO_PARSER_H_

#include <string>

#include "common/status.h"
#include "scenario/scenario.h"

namespace nonserial {
namespace scenario {

/// Parses one scenario file (grammar in docs/SCENARIOS.md) and validates
/// it structurally (ValidateSpec). Errors are InvalidArgument with a
/// source line number, e.g. "line 12: unknown session 's3'".
///
/// The language, in brief:
///
///   scenario "write-skew"
///   class cpc
///   description "..."
///   setup {
///     entity x = 20
///     entity y = 20
///     constraint "(x >= -100) & (y >= -100)"
///   }
///   session "s1" {
///     input "x >= -100 & y >= -100"
///     output "y >= -100"
///     step r1x { read x }
///     step w1y { write y = x + y }
///     step c1  { commit }
///   }
///   permutation r1x w1y c1 {
///     expect "CEP" { s1 commit  classes +cpc  final y = 40 }
///   }
///   all-permutations max-runs 500
///
/// `#` starts a comment. Names may be bare identifiers or quoted strings;
/// protocol names containing '-' (PW-2PL, Nested-CEP, PW-MVTO) must be
/// quoted. Predicates are quoted strings in the boolean-formula grammar of
/// predicate/formula.h (converted to CNF); write expressions use + - *
/// min(a,b) max(a,b) over integers and previously read entities.
StatusOr<ScenarioSpec> ParseScenario(const std::string& text);

}  // namespace scenario
}  // namespace nonserial

#endif  // NONSERIAL_SCENARIO_PARSER_H_
