#ifndef NONSERIAL_SCENARIO_SCENARIO_H_
#define NONSERIAL_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/transaction.h"
#include "predicate/predicate.h"
#include "predicate/value.h"

namespace nonserial {
namespace scenario {

/// One operation of a session's step program. Steps are the DSL's unit of
/// interleaving: permutation lines name steps and the runner injects them
/// in exactly that order (docs/SCENARIOS.md has the full grammar).
struct Step {
  enum class Kind : uint8_t { kBegin, kRead, kWrite, kCommit, kAbort };
  std::string name;
  Kind kind = Kind::kBegin;
  EntityId entity = kInvalidEntity;  ///< kRead / kWrite.
  Expr write_expr;                   ///< kWrite; over previously read entities.
  int line = 0;                      ///< Source line (diagnostics).
};

/// One named client session == one transaction of the scenario. Sessions
/// map to controller transaction ids by declaration order, so `after`
/// edges (the partial order P) may only point at earlier sessions.
struct SessionSpec {
  std::string name;
  Predicate input;   ///< I_t; must mention every entity the program reads.
  Predicate output;  ///< O_t; checked by the predicate protocols at commit.
  std::vector<int> predecessors;  ///< Session indices (partial order P).
  std::vector<Step> steps;
  int line = 0;
};

/// Terminal fate of one session in one run.
enum class Verdict : uint8_t { kCommit, kAbort, kBlocked };

std::string VerdictName(Verdict v);

/// One correctness-class assertion inside an expect block: "+cpc", "-sr".
/// kSr is view serializability (the paper's SR); kCsr the conflict variant.
struct ClassAssertion {
  enum class Cls : uint8_t { kCsr, kSr, kCpc, kPc };
  Cls cls = Cls::kCpc;
  bool expected = false;
};

std::string ClassAssertionName(ClassAssertion::Cls cls);

/// Expected outcome of one permutation under one protocol.
struct Expectation {
  std::string protocol;           ///< Registry name ("CEP", "S2PL", ...).
  std::vector<Verdict> verdicts;  ///< One per session, by session index.
  std::vector<ClassAssertion> classes;
  /// Asserted subset of the final committed state.
  std::vector<std::pair<EntityId, Value>> final_state;
  int line = 0;
};

/// A reference to one step: (session index, step index within the session).
struct StepRef {
  int session = 0;
  int step = 0;
  bool operator==(const StepRef&) const = default;
};

struct Permutation {
  std::vector<StepRef> order;  ///< Injection order; every step exactly once.
  std::vector<Expectation> expectations;
  int line = 0;
};

/// The all-permutations sweep: run every canonical interleaving (symmetry
/// pruned, see EnumerateInterleavings) up to max_runs, asserting run
/// invariants instead of per-permutation verdicts.
struct AllPermutations {
  bool enabled = false;
  int max_runs = 2000;
};

/// A parsed scenario file: entities + constraint, session step programs,
/// and the interleavings to drive with their expected per-protocol
/// outcomes.
struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Figure 2 containment annotation for the anomaly catalog: the smallest
  /// class admitting the scenario's headline interleaving — "sr", "pc",
  /// "cpc", or "incorrect" (admitted by none).
  std::string figure2_class;
  std::vector<std::string> entity_names;
  ValueVector initial;
  Predicate constraint;  ///< Database consistency constraint (the objects).
  std::vector<SessionSpec> sessions;
  std::vector<Permutation> permutations;
  AllPermutations all_permutations;

  /// Entity index by name; -1 when unknown.
  int EntityIndex(const std::string& entity_name) const;
  /// Session index by name; -1 when unknown.
  int SessionIndex(const std::string& session_name) const;
  const Step& StepAt(const StepRef& ref) const;
  /// Locates a step by its (globally unique) name; false when unknown.
  bool FindStep(const std::string& step_name, StepRef* out) const;
  int TotalSteps() const;
  /// Conjunct objects of the constraint (classification, PW protocols).
  ObjectSetList Objects() const { return constraint.Objects(); }
};

/// Structural validation beyond what parsing alone can check: non-empty
/// terminal programs, begin only as a first step, writes over previously
/// read entities, reads covered by the input predicate, permutations
/// covering every step exactly once in per-session program order, `after`
/// edges pointing at earlier sessions, expectations covering every session.
Status ValidateSpec(const ScenarioSpec& spec);

/// The program-order interleaving (sessions back to back, in declaration
/// order) — the canonical serial run.
std::vector<StepRef> SerialOrder(const ScenarioSpec& spec);

/// Enumerates interleavings of the sessions' step programs with symmetry
/// pruning: adjacent steps that commute for every registered protocol —
/// two data operations on distinct entities sharing no constraint object —
/// are only emitted in ascending session order, so each commutation class
/// contributes one canonical representative. begin/commit/abort steps
/// touch protocol-global state (timestamp clocks, lock releases,
/// validation) and never commute. Enumeration stops after max_runs
/// interleavings; *truncated (may be null) reports whether anything was
/// dropped.
std::vector<std::vector<StepRef>> EnumerateInterleavings(
    const ScenarioSpec& spec, int max_runs, bool* truncated);

}  // namespace scenario
}  // namespace nonserial

#endif  // NONSERIAL_SCENARIO_SCENARIO_H_
