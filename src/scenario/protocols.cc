#include "scenario/protocols.h"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/strings.h"
#include "protocol/cep.h"
#include "protocol/mvto.h"
#include "protocol/nested_cep.h"
#include "protocol/pw_mvto.h"
#include "protocol/two_phase_locking.h"

namespace nonserial {
namespace scenario {

const std::vector<std::string>& ProtocolNames() {
  static const std::vector<std::string> kNames = {
      "S2PL", "PW-2PL", "MVTO", "PW-MVTO", "CEP", "Nested-CEP"};
  return kNames;
}

bool IsProtocolName(const std::string& name) {
  for (const std::string& n : ProtocolNames()) {
    if (n == name) return true;
  }
  return false;
}

namespace {

/// Planned operations per session (by transaction id == session index),
/// straight from the step programs — what the 2PL variants need for the
/// update-lock discipline and predicate-wise group release.
std::map<int, std::vector<PlannedOp>> PlannedOps(const ScenarioSpec& spec) {
  std::map<int, std::vector<PlannedOp>> planned;
  for (size_t s = 0; s < spec.sessions.size(); ++s) {
    std::vector<PlannedOp>& ops = planned[static_cast<int>(s)];
    for (const Step& step : spec.sessions[s].steps) {
      if (step.kind == Step::Kind::kRead) {
        ops.push_back(PlannedOp{false, step.entity});
      } else if (step.kind == Step::Kind::kWrite) {
        ops.push_back(PlannedOp{true, step.entity});
      }
    }
  }
  return planned;
}

/// The baseline controllers (2PL/MVTO families, Nested-CEP's outer maps)
/// are single-threaded state machines — the tick simulator drove them
/// from one logical thread, per the ConcurrencyController contract. Only
/// CEP is an internal monitor. The concurrent Session transport drives
/// controllers from one thread per session, so every non-monitor
/// protocol is wrapped in this serializing decorator before the engine
/// sees it. No controller call blocks internally (kBlocked is returned,
/// never waited on), so one mutex around each entry point cannot
/// deadlock; it only serializes the state-machine transitions.
class SerializedController : public ConcurrencyController {
 public:
  explicit SerializedController(std::unique_ptr<ConcurrencyController> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void Register(int tx, TxProfile profile) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Register(tx, std::move(profile));
  }
  ReqResult Begin(int tx) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Begin(tx);
  }
  ReqResult Read(int tx, EntityId e, Value* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Read(tx, e, out);
  }
  ReqResult Write(int tx, EntityId e, Value value) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Write(tx, e, value);
  }
  void WriteDone(int tx, EntityId e) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->WriteDone(tx, e);
  }
  ReqResult Commit(int tx) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Commit(tx);
  }
  void Abort(int tx) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Abort(tx);
  }
  std::vector<int> TakeWakeups() override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->TakeWakeups();
  }
  std::vector<int> TakeForcedAborts() override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->TakeForcedAborts();
  }
  void SetObserver(TraceSink* sink) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->SetObserver(sink);
  }

 private:
  std::unique_ptr<ConcurrencyController> inner_;
  std::mutex mu_;
};

std::unique_ptr<ConcurrencyController> Serialized(
    std::unique_ptr<ConcurrencyController> inner) {
  return std::make_unique<SerializedController>(std::move(inner));
}

}  // namespace

StatusOr<ControllerFactory> MakeControllerFactory(const std::string& protocol,
                                                  const ScenarioSpec& spec) {
  if (protocol == "S2PL" || protocol == "PW-2PL") {
    TwoPhaseLockingController::Options options;
    options.predicatewise = protocol == "PW-2PL";
    options.objects = spec.Objects();
    options.planned_ops = PlannedOps(spec);
    return ControllerFactory([options](VersionStore* store) {
      return Serialized(
          std::make_unique<TwoPhaseLockingController>(store, options));
    });
  }
  if (protocol == "MVTO") {
    return ControllerFactory([](VersionStore* store) {
      return Serialized(std::make_unique<MvtoController>(store));
    });
  }
  if (protocol == "PW-MVTO") {
    ObjectSetList objects = spec.Objects();
    return ControllerFactory([objects](VersionStore* store) {
      return Serialized(std::make_unique<PwMvtoController>(store, objects));
    });
  }
  if (protocol == "CEP") {
    return ControllerFactory([](VersionStore* store) {
      return std::make_unique<CorrectExecutionProtocol>(
          store, CorrectExecutionProtocol::Options{});
    });
  }
  if (protocol == "Nested-CEP") {
    NestedCepController::Options options;
    for (size_t s = 0; s < spec.sessions.size(); ++s) {
      const SessionSpec& session = spec.sessions[s];
      NestedGroup group;
      group.name = session.name;
      group.input = session.input;
      group.output = session.output;
      group.predecessors = session.predecessors;
      options.groups.push_back(std::move(group));
      options.group_of_tx.push_back(static_cast<int>(s));
    }
    return ControllerFactory([options](VersionStore* store) {
      return Serialized(std::make_unique<NestedCepController>(store, options));
    });
  }
  return Status::InvalidArgument(
      StrCat("unknown protocol '", protocol, "' (registered: ",
             Join(ProtocolNames(), ", "), ")"));
}

}  // namespace scenario
}  // namespace nonserial
