#ifndef NONSERIAL_SCENARIO_PROTOCOLS_H_
#define NONSERIAL_SCENARIO_PROTOCOLS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "protocol/controller.h"
#include "scenario/scenario.h"
#include "storage/version_store.h"

namespace nonserial {
namespace scenario {

/// A controller factory in the engine's shape (EngineOptions::
/// controller_factory): builds a fresh protocol instance over a store.
using ControllerFactory =
    std::function<std::unique_ptr<ConcurrencyController>(VersionStore*)>;

/// Every protocol a scenario runs against, in canonical order:
/// S2PL, PW-2PL, MVTO, PW-MVTO, CEP, Nested-CEP.
const std::vector<std::string>& ProtocolNames();

bool IsProtocolName(const std::string& name);

/// Builds the factory hosting `protocol` configured for `spec`:
///  - S2PL / PW-2PL derive per-transaction planned operations from the
///    session step programs (update-lock discipline, predicate-wise
///    groups from the constraint objects);
///  - PW-MVTO takes the constraint objects (per-object virtual clocks);
///  - Nested-CEP runs one group per session (I_G/O_G = the session's
///    predicates, group predecessors = the session's `after` edges);
///  - MVTO and CEP need no scenario-derived configuration.
/// Unknown names are InvalidArgument.
StatusOr<ControllerFactory> MakeControllerFactory(const std::string& protocol,
                                                  const ScenarioSpec& spec);

}  // namespace scenario
}  // namespace nonserial

#endif  // NONSERIAL_SCENARIO_PROTOCOLS_H_
