#ifndef NONSERIAL_COMMON_STATUS_H_
#define NONSERIAL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace nonserial {

/// Canonical error codes, modeled after the usual database-style Status
/// vocabulary (RocksDB / Arrow). Kept deliberately small; modules should
/// prefer the most specific code that applies.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kAborted = 8,        ///< Transaction aborted by the concurrency control.
  kDeadlock = 9,       ///< Aborted specifically to break a deadlock.
  kUnsatisfiable = 10, ///< No version assignment satisfies a predicate.
  kResourceExhausted = 11  ///< Admission control shed the request; retry
                           ///< later (engine/server backpressure).
};

/// Returns the canonical lower-case name of a code ("ok", "aborted", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight error-or-success result. The library does not use
/// exceptions across API boundaries; fallible functions return Status or
/// StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal_status::DieOnBadStatusAccess(status_);
}

/// Propagates a non-OK Status from an expression to the caller.
#define NONSERIAL_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::nonserial::Status _status = (expr);                 \
    if (!_status.ok()) return _status;                    \
  } while (false)

/// Assigns the value of a StatusOr expression or propagates its error.
#define NONSERIAL_ASSIGN_OR_RETURN(lhs, expr)             \
  auto NONSERIAL_CONCAT_(_status_or_, __LINE__) = (expr); \
  if (!NONSERIAL_CONCAT_(_status_or_, __LINE__).ok())     \
    return NONSERIAL_CONCAT_(_status_or_, __LINE__).status(); \
  lhs = std::move(NONSERIAL_CONCAT_(_status_or_, __LINE__)).value()

#define NONSERIAL_CONCAT_IMPL_(a, b) a##b
#define NONSERIAL_CONCAT_(a, b) NONSERIAL_CONCAT_IMPL_(a, b)

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_STATUS_H_
