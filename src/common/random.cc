#include "common/random.h"

#include <cmath>

namespace nonserial {

void Rng::Seed(uint64_t seed) {
  state_ = 0;
  Next();
  state_ += seed;
  Next();
  zipf_n_ = 0;
  zipf_theta_ = -1.0;
}

uint32_t Rng::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

uint32_t Rng::Uniform(uint32_t bound) {
  // Lemire-style rejection-free-ish bounded draw; bias is negligible for the
  // bounds used here but we keep the classic threshold rejection for
  // exactness.
  uint32_t threshold = (-bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Next64() % span);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::Zipf(uint32_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  if (zipf_n_ != n || zipf_theta_ != theta) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zeta_ = 0.0;
    for (uint32_t i = 1; i <= n; ++i) zipf_zeta_ += 1.0 / std::pow(i, theta);
  }
  // Inverse-CDF by linear scan is O(n) but n is small in our experiments; a
  // precomputed alias table would be overkill.
  double u = NextDouble() * zipf_zeta_;
  double sum = 0.0;
  for (uint32_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(i, theta);
    if (sum >= u) return i - 1;
  }
  return n - 1;
}

}  // namespace nonserial
