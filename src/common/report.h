#ifndef NONSERIAL_COMMON_REPORT_H_
#define NONSERIAL_COMMON_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/span.h"

namespace nonserial {

/// Version of the machine-readable run-report schema. Bump on any change a
/// consumer could observe (renamed key, moved field, changed meaning);
/// adding new optional keys is compatible and needs no bump.
inline constexpr int kReportSchemaVersion = 1;

/// A minimal JSON document: null, bool, int64, double, string, array, or
/// object. Objects preserve insertion order, so reports serialize with a
/// stable key layout (the golden-file test depends on it). Built for
/// *writing* reports — there is deliberately no parser.
class Json {
 public:
  Json() = default;
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(int64_t value) : type_(Type::kInt), int_(value) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  bool is_null() const { return type_ == Type::kNull; }

  /// Object access: returns the value at `key`, inserting a null member at
  /// the end if absent. A null Json silently becomes an object.
  Json& operator[](const std::string& key);

  /// Array append. A null Json silently becomes an array.
  void Push(Json value);

  size_t size() const { return members_.size(); }

  /// Serializes the document. `indent` = 0 renders one line; otherwise
  /// pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

 private:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  /// Array elements (keys empty) or object members, in insertion order.
  std::vector<std::pair<std::string, Json>> members_;
};

/// All counters and histograms of a ProtocolMetrics as a JSON object.
/// Histograms render as {count, mean, p50, p99, max}.
Json MetricsJson(const ProtocolMetrics& metrics);

/// Builds the run report every bench and driver emits under `--json`:
///
///   {
///     "schema_version": 1,
///     "bench": "<name>",
///     "ok": true,
///     "config": {...},        // free-form run parameters
///     "results": [...],       // one row per measured point
///     "metrics": {...},       // MetricsJson, when attached
///     "events": {"CEP": {"committed": 16, ...}, ...}  // when attached
///   }
///
/// Keys appear in exactly that order; absent sections are omitted, not
/// null. The whole report is a single JSON document — CI pipes it through
/// `python3 -m json.tool` as a gate.
class ReportBuilder {
 public:
  explicit ReportBuilder(std::string bench);

  void SetOk(bool ok) { ok_ = ok; }
  bool ok() const { return ok_; }

  /// The free-form config object (insert keys directly).
  Json& config() { return config_; }

  /// Appends one measurement row to `results`.
  void AddResult(Json row) { results_.Push(std::move(row)); }

  void AttachMetrics(const ProtocolMetrics& metrics) {
    metrics_ = MetricsJson(metrics);
  }

  /// Event tallies as produced by TraceRecorder::Tally() — protocol name
  /// to kind-name to count. Taken as plain maps so this layer stays
  /// independent of the protocol library.
  void AttachEventTallies(
      const std::map<std::string, std::map<std::string, int64_t>>& tallies);

  Json Build() const;
  std::string Dump(int indent = 2) const { return Build().Dump(indent); }

 private:
  std::string bench_;
  bool ok_ = true;
  Json config_ = Json::Object();
  Json results_ = Json::Array();
  Json metrics_;
  Json events_;
};

/// A span timeline in the Chrome trace_event JSON format — load the file in
/// about:tracing or https://ui.perfetto.dev. Lanes map to `tid`, phases to
/// complete ("ph":"X") events; lane names emit thread_name metadata.
Json ChromeTraceJson(const SpanTimeline& timeline);

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_REPORT_H_
