#ifndef NONSERIAL_COMMON_STRINGS_H_
#define NONSERIAL_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nonserial {

/// Concatenates the string representations of the arguments via ostream
/// formatting. `StrCat("x", 3, '!')` -> "x3!".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are dropped.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a signed 64-bit integer; returns false on any non-integer input.
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_STRINGS_H_
