#ifndef NONSERIAL_COMMON_SPAN_H_
#define NONSERIAL_COMMON_SPAN_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nonserial {

/// One timed phase of one transaction attempt, on the timeline's shared
/// clock. Phases partition an attempt's lifetime: "validate" (Begin until
/// admission), "execute" (reads/writes), "terminate" (first Commit call
/// until the attempt resolves); "commit-wait" overlays the blocked portion
/// of termination. `lane` groups spans per display row (transaction id) and
/// becomes `tid` in the Chrome trace export.
struct PhaseSpan {
  int lane = 0;
  int attempt = 0;
  const char* phase = "";  ///< Static string; not owned.
  int64_t start_us = 0;    ///< Offset from the timeline epoch.
  int64_t dur_us = 0;
  bool ok = true;  ///< False when the phase ended in an abort.
};

/// A shared wall-clock timeline of phase spans. The epoch is fixed at
/// construction (steady clock), so spans recorded across crash-recovery
/// cycles of a chaos run stay on one coherent time axis. Thread-safe:
/// parallel-driver workers append concurrently.
class SpanTimeline {
 public:
  SpanTimeline() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since the timeline was created.
  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void Add(const PhaseSpan& span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(span);
  }

  /// Labels a lane ("T3 transfer", "group 1") in the exported trace.
  void SetLaneName(int lane, std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    lane_names_[lane] = std::move(name);
  }

  std::vector<PhaseSpan> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  std::map<int, std::string> lane_names() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lane_names_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<PhaseSpan> spans_;
  std::map<int, std::string> lane_names_;
};

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_SPAN_H_
