#ifndef NONSERIAL_COMMON_LOGGING_H_
#define NONSERIAL_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace nonserial {

/// Log severities, increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global threshold: messages below this level are discarded. Defaults to
/// kWarning so that tests and benchmarks stay quiet unless asked.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace nonserial

#define NONSERIAL_LOG(level)                                      \
  ::nonserial::internal_logging::LogMessage(                      \
      ::nonserial::LogLevel::k##level, __FILE__, __LINE__)        \
      .stream()

/// CHECK-style invariant assertions: enabled in all build types. A failed
/// check logs the expression and aborts; these guard internal invariants,
/// not user input (user input errors are reported via Status).
#define NONSERIAL_CHECK(cond)                                              \
  if (!(cond))                                                             \
  ::nonserial::internal_logging::LogMessage(                               \
      ::nonserial::LogLevel::kError, __FILE__, __LINE__, /*fatal=*/true)   \
          .stream()                                                        \
      << "Check failed: " #cond " "

#define NONSERIAL_CHECK_EQ(a, b) NONSERIAL_CHECK((a) == (b))
#define NONSERIAL_CHECK_NE(a, b) NONSERIAL_CHECK((a) != (b))
#define NONSERIAL_CHECK_LT(a, b) NONSERIAL_CHECK((a) < (b))
#define NONSERIAL_CHECK_LE(a, b) NONSERIAL_CHECK((a) <= (b))
#define NONSERIAL_CHECK_GT(a, b) NONSERIAL_CHECK((a) > (b))
#define NONSERIAL_CHECK_GE(a, b) NONSERIAL_CHECK((a) >= (b))

#endif  // NONSERIAL_COMMON_LOGGING_H_
