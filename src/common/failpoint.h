#ifndef NONSERIAL_COMMON_FAILPOINT_H_
#define NONSERIAL_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nonserial {

/// Trigger description of one armed failpoint. The point fires when all
/// three gates pass, evaluated per NONSERIAL_FAILPOINT hit:
///   1. `skip_first` evaluations have already happened,
///   2. a Bernoulli(probability) draw succeeds,
///   3. fewer than `max_fires` firings have happened (-1 = unlimited).
struct FailpointSpec {
  double probability = 1.0;
  int64_t skip_first = 0;
  int64_t max_fires = -1;
};

/// Registry of named failure-injection points. Call sites guard fault
/// branches with NONSERIAL_FAILPOINT("component.point"); tests and the
/// chaos driver arm points by name. Disabled cost is one relaxed atomic
/// load (no map lookup, no lock), so the hooks can stay in hot protocol
/// paths permanently.
///
/// Thread safety: Arm/Disarm/ShouldFire may be called from any thread; the
/// slow path serializes on one mutex (only reached while at least one point
/// is armed, i.e. in fault-injection runs). Firing decisions use a
/// deterministic PCG stream seeded via Seed(), so a chaos schedule is
/// reproducible from its seed.
class FailpointRegistry {
 public:
  /// Process-wide registry. Failpoints are global by design: the fault is a
  /// property of the run, not of one component instance.
  static FailpointRegistry& Global();

  void Arm(const std::string& name, FailpointSpec spec);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Re-seeds the firing RNG (deterministic schedules).
  void Seed(uint64_t seed);

  /// Fast path: true iff any point is armed.
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: evaluates the named point's trigger. Unarmed names never
  /// fire (but are not counted either).
  bool ShouldFire(const char* name);

  /// Draws 64 bits from the same deterministic stream the firing decisions
  /// use. Fault-effect parameters (which byte to tear at, which bit to
  /// flip) come from here so a whole fault schedule — including the damage
  /// itself — replays from one Seed() value.
  uint64_t DrawBits();

  /// Lifetime firing / evaluation counts for the named point (0 if never
  /// armed). Counts survive Disarm so tests can assert after tear-down.
  int64_t fires(const std::string& name) const;
  int64_t evaluations(const std::string& name) const;

 private:
  struct Point {
    FailpointSpec spec;
    bool armed = false;
    int64_t evaluations = 0;
    int64_t fires = 0;
  };

  FailpointRegistry() = default;

  double NextUniform();  ///< Caller holds mu_.

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
  std::atomic<int> armed_points_{0};
  uint64_t rng_state_ = 0x853c49e6748fea9bULL;
};

/// Scoped arming: arms on construction, disarms (that point only) on
/// destruction. Keeps test failpoints from leaking into later tests in the
/// same process.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointSpec spec) : name_(std::move(name)) {
    FailpointRegistry::Global().Arm(name_, spec);
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace nonserial

/// True iff the named failpoint fires at this evaluation. Zero-cost when no
/// failpoint is armed anywhere in the process.
#define NONSERIAL_FAILPOINT(name)                        \
  (::nonserial::FailpointRegistry::Global().armed() &&   \
   ::nonserial::FailpointRegistry::Global().ShouldFire(name))

#endif  // NONSERIAL_COMMON_FAILPOINT_H_
