#include "common/failpoint.h"

namespace nonserial {

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& point = points_[name];
  if (!point.armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  point.armed = true;
  point.spec = spec;
  point.evaluations = 0;
  point.fires = 0;
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    if (point.armed) {
      point.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FailpointRegistry::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed * 6364136223846793005ULL + 1442695040888963407ULL;
}

double FailpointRegistry::NextUniform() {
  // xorshift64*: cheap, deterministic, good enough for firing decisions.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  uint64_t bits = rng_state_ * 0x2545F4914F6CDD1DULL;
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool FailpointRegistry::ShouldFire(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return false;
  Point& point = it->second;
  ++point.evaluations;
  if (point.evaluations <= point.spec.skip_first) return false;
  if (point.spec.max_fires >= 0 && point.fires >= point.spec.max_fires) {
    return false;
  }
  if (point.spec.probability < 1.0 &&
      NextUniform() >= point.spec.probability) {
    return false;
  }
  ++point.fires;
  return true;
}

uint64_t FailpointRegistry::DrawBits() {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545F4914F6CDD1DULL;
}

int64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

int64_t FailpointRegistry::evaluations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evaluations;
}

}  // namespace nonserial
