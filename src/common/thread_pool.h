#ifndef NONSERIAL_COMMON_THREAD_POOL_H_
#define NONSERIAL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nonserial {

/// A small fixed-size worker pool. Two usage styles:
///
///  - Submit(fn): fire-and-forget; the destructor drains the queue.
///  - ParallelFor(n, fn): runs fn(0..n-1), blocking until all complete. The
///    calling thread participates in the work, so ParallelFor makes progress
///    (and degrades to a plain loop) even when every worker is busy or the
///    pool has no threads — it can never deadlock on pool starvation.
///
/// The verifier and the class recognizers share one process-wide pool
/// (Shared()) sized to the hardware; the simulation drivers create their own
/// client threads instead (clients block on protocol waits, which would
/// starve a shared pool).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n), returning when all calls finished.
  /// Indices are distributed dynamically (atomic grab), so uneven per-index
  /// costs balance across workers.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Process-wide pool for verification work: min(hardware, 8) threads.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_THREAD_POOL_H_
