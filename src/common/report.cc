#include "common/report.h"

#include <cmath>
#include <cstdio>

namespace nonserial {

namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNewlineIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json());
  return members_.back().second;
}

void Json::Push(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  members_.emplace_back(std::string(), std::move(value));
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      return;
    }
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no Inf/NaN.
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", double_);
      *out += buf;
      return;
    }
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (members_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendNewlineIndent(out, indent, depth + 1);
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendNewlineIndent(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendNewlineIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

namespace {

Json HistogramJson(const Histogram& h) {
  Json out = Json::Object();
  out["count"] = h.count();
  out["mean"] = h.mean();
  out["p50"] = h.ApproxPercentile(0.5);
  out["p99"] = h.ApproxPercentile(0.99);
  out["max"] = h.max();
  return out;
}

}  // namespace

Json MetricsJson(const ProtocolMetrics& m) {
  Json out = Json::Object();
  Json& locks = out["locks"];
  locks["grants"] = m.lock_grants.value();
  locks["blocks"] = m.lock_blocks.value();
  locks["reevals"] = m.lock_reevals.value();
  Json& fig4 = out["figure4"];
  fig4["reevals"] = m.reevals.value();
  fig4["reassigns"] = m.reassigns.value();
  Json& aborts = out["aborts"];
  aborts["partial_order"] = m.po_aborts.value();
  aborts["cascade"] = m.cascade_aborts.value();
  aborts["output"] = m.output_aborts.value();
  aborts["injected"] = m.injected_aborts.value();
  aborts["deadline"] = m.deadline_aborts.value();
  Json& validation = out["validation"];
  validation["ok"] = m.validations.value();
  validation["fail"] = m.validation_fails.value();
  validation["rescans"] = m.validation_rescans.value();
  validation["starved"] = m.validation_starved.value();
  validation["search_nodes"] = HistogramJson(m.search_nodes);
  Json& cache = out["eval_cache"];
  cache["hits"] = m.cache_hits.value();
  cache["misses"] = m.cache_misses.value();
  cache["invalidations"] = m.cache_invalidations.value();
  int64_t cache_probes = m.cache_hits.value() + m.cache_misses.value();
  cache["hit_rate"] =
      cache_probes == 0 ? 0.0
                        : static_cast<double>(m.cache_hits.value()) /
                              static_cast<double>(cache_probes);
  cache["delta_rescans"] = m.delta_rescans.value();
  cache["delta_fallbacks"] = m.delta_fallbacks.value();
  out["commit_waits"] = m.commit_waits.value();
  out["wait_micros"] = HistogramJson(m.wait_micros);
  Json& spans = out["spans"];
  spans["validate"] = HistogramJson(m.span_validate);
  spans["execute"] = HistogramJson(m.span_execute);
  spans["commit_wait"] = HistogramJson(m.span_commit_wait);
  spans["terminate"] = HistogramJson(m.span_terminate);
  Json& recovery = out["recovery"];
  recovery["crash_restarts"] = m.crash_restarts.value();
  recovery["recovered_txs"] = m.recovered_txs.value();
  recovery["frames_scanned"] = m.recovery_frames_scanned.value();
  recovery["frames_truncated"] = m.recovery_frames_truncated.value();
  recovery["frames_salvaged"] = m.recovery_frames_salvaged.value();
  recovery["checkpoint_compactions"] = m.checkpoint_compactions.value();
  recovery["recovery_micros"] = HistogramJson(m.recovery_micros);
  Json& group = out["group_commit"];
  group["batches"] = m.group_commit_batches.value();
  group["frames"] = m.group_commit_frames.value();
  group["commits"] = m.group_commit_commits.value();
  group["stalls"] = m.group_commit_stalls.value();
  group["failed_acks"] = m.group_commit_failed_acks.value();
  group["staged_dropped"] = m.group_staged_dropped.value();
  group["device_flushes"] = m.wal_device_flushes.value();
  Json& server = out["server"];
  server["accepted"] = m.server_accepted.value();
  server["shed"] = m.server_shed.value();
  server["requests"] = m.server_requests.value();
  server["sessions_opened"] = m.server_sessions_opened.value();
  server["sessions_closed"] = m.server_sessions_closed.value();
  server["active_sessions"] =
      m.server_sessions_opened.value() - m.server_sessions_closed.value();
  server["wire_errors"] = m.server_wire_errors.value();
  server["queue_depth"] = HistogramJson(m.server_queue_depth);
  server["inflight"] = HistogramJson(m.server_inflight);
  server["retries"] = m.server_retries.value();
  server["lease_expired"] = m.server_lease_expired.value();
  server["retired_tx"] = m.engine_retired_tx.value();
  return out;
}

std::string ProtocolMetrics::ToJson() const { return MetricsJson(*this).Dump(2); }

ReportBuilder::ReportBuilder(std::string bench) : bench_(std::move(bench)) {}

void ReportBuilder::AttachEventTallies(
    const std::map<std::string, std::map<std::string, int64_t>>& tallies) {
  events_ = Json::Object();
  for (const auto& [protocol, kinds] : tallies) {
    Json& per_protocol = events_[protocol];
    for (const auto& [kind, count] : kinds) per_protocol[kind] = count;
  }
}

Json ReportBuilder::Build() const {
  Json out = Json::Object();
  out["schema_version"] = kReportSchemaVersion;
  out["bench"] = bench_;
  out["ok"] = ok_;
  out["config"] = config_;
  out["results"] = results_;
  if (!metrics_.is_null()) out["metrics"] = metrics_;
  if (!events_.is_null()) out["events"] = events_;
  return out;
}

Json ChromeTraceJson(const SpanTimeline& timeline) {
  Json events = Json::Array();
  for (const auto& [lane, name] : timeline.lane_names()) {
    Json meta = Json::Object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = lane;
    meta["args"]["name"] = name;
    events.Push(std::move(meta));
  }
  for (const PhaseSpan& span : timeline.spans()) {
    Json event = Json::Object();
    event["name"] = span.phase;
    event["ph"] = "X";
    event["ts"] = span.start_us;
    event["dur"] = span.dur_us;
    event["pid"] = 0;
    event["tid"] = span.lane;
    Json& args = event["args"];
    args["attempt"] = span.attempt;
    args["ok"] = span.ok;
    events.Push(std::move(event));
  }
  Json out = Json::Object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = "ms";
  return out;
}

}  // namespace nonserial
