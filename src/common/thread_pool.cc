#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace nonserial {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  int helpers = std::min(size(), n - 1);
  if (helpers <= 0) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared dynamic-index state; helpers may outlive this stack frame only
  // until done_cv fires, so everything lives in a shared_ptr.
  struct Work {
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int total = 0;
  };
  auto work = std::make_shared<Work>();
  work->total = n;
  auto run_chunk = [work, &fn]() {
    for (;;) {
      int i = work->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= work->total) break;
      fn(i);
      if (work->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          work->total) {
        std::lock_guard<std::mutex> lock(work->mu);
        work->done_cv.notify_all();
      }
    }
  };
  // Helpers share `fn` by reference: safe because the caller blocks below
  // until every index completed, and helpers touch fn only before that.
  for (int h = 0; h < helpers; ++h) Submit(run_chunk);
  run_chunk();
  std::unique_lock<std::mutex> lock(work->mu);
  work->done_cv.wait(lock, [&] {
    return work->completed.load(std::memory_order_acquire) == work->total;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    return new ThreadPool(std::clamp(hw, 1, 8));
  }();
  return *pool;
}

}  // namespace nonserial
