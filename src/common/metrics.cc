#include "common/metrics.h"

#include <algorithm>
#include <sstream>

namespace nonserial {

namespace {

int BucketOf(int64_t value) {
  if (value <= 0) return 0;
  int bucket = 1;
  while (bucket < Histogram::kNumBuckets - 1 &&
         value >= (int64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::ApproxPercentile(double p) const {
  int64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return b == 0 ? 0 : (int64_t{1} << b) - 1;  // Bucket upper bound.
    }
  }
  return max();
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50<=" << ApproxPercentile(0.5)
     << " p99<=" << ApproxPercentile(0.99) << " max=" << max();
  return os.str();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string ProtocolMetrics::Summary() const {
  std::ostringstream os;
  os << "locks: grants=" << lock_grants.value()
     << " blocks=" << lock_blocks.value()
     << " re-evals=" << lock_reevals.value() << "\n";
  os << "figure-4: routines=" << reevals.value()
     << " re-assigns=" << reassigns.value() << "\n";
  os << "aborts: partial-order=" << po_aborts.value()
     << " cascade=" << cascade_aborts.value()
     << " output=" << output_aborts.value();
  if (injected_aborts.value() > 0) {
    os << " injected=" << injected_aborts.value();
  }
  if (deadline_aborts.value() > 0) {
    os << " deadline=" << deadline_aborts.value();
  }
  os << "\n";
  os << "validation: ok=" << validations.value()
     << " fail=" << validation_fails.value()
     << " rescans=" << validation_rescans.value()
     << " starved=" << validation_starved.value() << "\n";
  if (cache_hits.value() + cache_misses.value() > 0 ||
      delta_rescans.value() > 0) {
    int64_t probes = cache_hits.value() + cache_misses.value();
    os << "eval cache: hits=" << cache_hits.value()
       << " misses=" << cache_misses.value()
       << " invalidations=" << cache_invalidations.value() << " hit-rate="
       << (probes == 0 ? 0.0
                       : static_cast<double>(cache_hits.value()) /
                             static_cast<double>(probes))
       << " delta-rescans=" << delta_rescans.value()
       << " delta-fallbacks=" << delta_fallbacks.value() << "\n";
  }
  if (crash_restarts.value() > 0) {
    os << "recovery: crash-restarts=" << crash_restarts.value()
       << " recovered-txs=" << recovered_txs.value()
       << " frames-scanned=" << recovery_frames_scanned.value()
       << " frames-truncated=" << recovery_frames_truncated.value()
       << " frames-salvaged=" << recovery_frames_salvaged.value()
       << " compactions=" << checkpoint_compactions.value() << "\n";
    if (recovery_micros.count() > 0) {
      os << "recovery time (us): " << recovery_micros.ToString() << "\n";
    }
  }
  if (group_commit_batches.value() > 0 || wal_device_flushes.value() > 0) {
    os << "group commit: batches=" << group_commit_batches.value()
       << " frames=" << group_commit_frames.value()
       << " commits=" << group_commit_commits.value()
       << " stalls=" << group_commit_stalls.value()
       << " failed-acks=" << group_commit_failed_acks.value()
       << " staged-dropped=" << group_staged_dropped.value()
       << " device-flushes=" << wal_device_flushes.value() << "\n";
  }
  if (server_sessions_opened.value() > 0 || server_shed.value() > 0) {
    os << "server: accepted=" << server_accepted.value()
       << " shed=" << server_shed.value()
       << " requests=" << server_requests.value()
       << " sessions-opened=" << server_sessions_opened.value()
       << " sessions-closed=" << server_sessions_closed.value()
       << " wire-errors=" << server_wire_errors.value()
       << " retries=" << server_retries.value()
       << " lease-expired=" << server_lease_expired.value()
       << " retired-tx=" << engine_retired_tx.value() << "\n";
    if (server_queue_depth.count() > 0) {
      os << "server queue depth: " << server_queue_depth.ToString() << "\n";
    }
    if (server_inflight.count() > 0) {
      os << "server in-flight: " << server_inflight.ToString() << "\n";
    }
  }
  if (search_nodes.count() > 0) {
    os << "search nodes: " << search_nodes.ToString() << "\n";
  }
  os << "commit waits: " << commit_waits.value() << "\n";
  if (wait_micros.count() > 0) {
    os << "blocked episodes (us): " << wait_micros.ToString() << "\n";
  }
  if (span_validate.count() > 0) {
    os << "span validate: " << span_validate.ToString() << "\n";
  }
  if (span_execute.count() > 0) {
    os << "span execute: " << span_execute.ToString() << "\n";
  }
  if (span_commit_wait.count() > 0) {
    os << "span commit-wait: " << span_commit_wait.ToString() << "\n";
  }
  if (span_terminate.count() > 0) {
    os << "span terminate: " << span_terminate.ToString() << "\n";
  }
  return os.str();
}

void ProtocolMetrics::Reset() {
  lock_grants.Reset();
  lock_blocks.Reset();
  lock_reevals.Reset();
  reevals.Reset();
  reassigns.Reset();
  po_aborts.Reset();
  cascade_aborts.Reset();
  output_aborts.Reset();
  injected_aborts.Reset();
  deadline_aborts.Reset();
  validations.Reset();
  validation_fails.Reset();
  validation_rescans.Reset();
  validation_starved.Reset();
  search_nodes.Reset();
  cache_hits.Reset();
  cache_misses.Reset();
  cache_invalidations.Reset();
  delta_rescans.Reset();
  delta_fallbacks.Reset();
  commit_waits.Reset();
  wait_micros.Reset();
  span_validate.Reset();
  span_execute.Reset();
  span_commit_wait.Reset();
  span_terminate.Reset();
  crash_restarts.Reset();
  recovered_txs.Reset();
  recovery_frames_scanned.Reset();
  recovery_frames_truncated.Reset();
  recovery_frames_salvaged.Reset();
  checkpoint_compactions.Reset();
  recovery_micros.Reset();
  group_commit_batches.Reset();
  group_commit_frames.Reset();
  group_commit_commits.Reset();
  group_commit_stalls.Reset();
  group_commit_failed_acks.Reset();
  group_staged_dropped.Reset();
  wal_device_flushes.Reset();
  server_accepted.Reset();
  server_shed.Reset();
  server_requests.Reset();
  server_sessions_opened.Reset();
  server_sessions_closed.Reset();
  server_wire_errors.Reset();
  server_queue_depth.Reset();
  server_inflight.Reset();
  server_retries.Reset();
  server_lease_expired.Reset();
  engine_retired_tx.Reset();
}

}  // namespace nonserial
