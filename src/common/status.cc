#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace nonserial {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kUnsatisfiable:
      return "unsatisfiable";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr value access on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace nonserial
