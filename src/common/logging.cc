#include "common/logging.h"

#include <atomic>

namespace nonserial {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal_ || static_cast<int>(level) >=
                           static_cast<int>(GetLogLevel());
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace nonserial
