#ifndef NONSERIAL_COMMON_RANDOM_H_
#define NONSERIAL_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nonserial {

/// Deterministic PCG32 pseudo-random generator. All randomized components in
/// the library (workload generation, schedule sampling, search tie-breaking)
/// take an explicit Rng so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator; the same seed yields the same stream.
  void Seed(uint64_t seed);

  /// Uniform 32-bit value.
  uint32_t Next();

  /// Uniform 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint32_t Uniform(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed value in [0, n) with skew theta in [0, 1). theta = 0 is
  /// uniform; values near 1 are highly skewed. Used to model hot-spot access
  /// patterns in contention experiments.
  uint32_t Zipf(uint32_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = Uniform(static_cast<uint32_t>(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Uniform(static_cast<uint32_t>(items.size()))];
  }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0xda3e39cb94b95bdbULL;

  // Cached Zipf normalization (recomputed when (n, theta) changes).
  uint32_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zeta_ = 0.0;
};

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_RANDOM_H_
