#ifndef NONSERIAL_COMMON_METRICS_H_
#define NONSERIAL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace nonserial {

/// A monotonically increasing event counter. Thread-safe; increments use
/// relaxed atomics (counters are statistics, not synchronization).
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over non-negative integer samples with power-of-two buckets:
/// bucket b counts samples v with 2^(b-1) <= v < 2^b (bucket 0 counts v==0).
/// Thread-safe via relaxed atomics; totals are maintained so mean() needs no
/// bucket walk.
class Histogram {
 public:
  static constexpr int kNumBuckets = 33;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  int64_t ApproxPercentile(double p) const;

  /// Compact one-line rendering: "n=… mean=… p50≤… p99≤… max=…".
  std::string ToString() const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// The stats layer shared by the protocol engine, the lock manager, and the
/// drivers. One instance per run; every member is individually thread-safe,
/// so components update it concurrently without coordination.
struct ProtocolMetrics {
  // Lock-manager outcomes (Figure 3 matrix results).
  Counter lock_grants;      ///< Requests answered "true" immediately.
  Counter lock_blocks;      ///< Rv/R requests refused by an active W.
  Counter lock_reevals;     ///< W grants that triggered re-evaluation.

  // Figure 4 re-evaluation routine.
  Counter reevals;          ///< Routine invocations (one per conflicted W).
  Counter reassigns;        ///< Readers re-assigned to the new version.

  // Aborts by cause.
  Counter po_aborts;        ///< Partial-order invalidation (read too early).
  Counter cascade_aborts;   ///< Readers of rolled-back versions.
  Counter output_aborts;    ///< Output condition failed at commit.
  Counter injected_aborts;  ///< Fault-injection (chaos) forced aborts.
  Counter deadline_aborts;  ///< Blocked-time budget exhausted (driver).

  // Validation phase.
  Counter validations;        ///< Successful version assignments.
  Counter validation_fails;   ///< Searches that found no assignment.
  Counter validation_rescans; ///< Optimistic searches retried because the
                              ///< store changed while searching unlocked.
  Counter validation_starved; ///< Rescan cap exhausted; the search fell
                              ///< back to running under the engine lock.
  Histogram search_nodes;     ///< Assignment-search nodes per validation.

  // Incremental verification (eval cache + delta revalidation).
  Counter cache_hits;           ///< Conjunct evaluations answered from cache.
  Counter cache_misses;         ///< Conjunct evaluations computed + inserted.
  Counter cache_invalidations;  ///< Stale cache entries replaced/dropped.
  Counter delta_rescans;        ///< Rescans solved as delta-revalidations
                                ///< (unchanged entities pinned to their
                                ///< previous versions).
  Counter delta_fallbacks;      ///< Delta-revalidations that found nothing
                                ///< under the pins and re-ran from scratch.

  // Driver-level waiting.
  Counter commit_waits;     ///< Commit attempts parked on a predecessor.
  Histogram wait_micros;    ///< Wall-clock µs per blocked episode (parallel
                            ///< driver only; the tick simulator has no wall
                            ///< clock).

  // Per-transaction phase spans. Units depend on the driver: wall-clock µs
  // under the parallel driver, simulated ticks under the tick simulator.
  Histogram span_validate;     ///< Begin until the attempt is admitted.
  Histogram span_execute;      ///< Admission until the last read/write.
  Histogram span_commit_wait;  ///< Blocked portion of termination.
  Histogram span_terminate;    ///< First Commit call until resolution.

  // Fault-injection & recovery (chaos runs).
  Counter crash_restarts;   ///< Simulated crash-kill + WAL recovery cycles.
  Counter recovered_txs;    ///< Committed transactions restored from WAL.
  Counter recovery_frames_scanned;    ///< Valid log frames decoded.
  Counter recovery_frames_truncated;  ///< Torn/bad-CRC tail frames dropped.
  Counter recovery_frames_salvaged;   ///< Records replayed despite mid-log
                                      ///< corruption (best-effort mode).
  Counter checkpoint_compactions;     ///< Checkpoint installs that reclaimed
                                      ///< earlier log segments.
  Histogram recovery_micros;          ///< Wall-clock µs per recovery pass.

  // Group-commit pipeline (durable runs; folded in from WalStats by the
  // parallel driver after workers join).
  Counter group_commit_batches;   ///< Staging batches flushed by the writer.
  Counter group_commit_frames;    ///< Frames flushed via batches.
  Counter group_commit_commits;   ///< Commit acks resolved by batch flushes.
  Counter group_commit_stalls;    ///< Commit acks that blocked on a flush
                                  ///< epoch (WaitDurable actually waited).
  Counter group_commit_failed_acks;  ///< Acks failed by a mid-batch media
                                     ///< fault or a crash discard.
  Counter group_staged_dropped;   ///< Staged frames lost to crash restarts.
  Counter wal_device_flushes;     ///< Simulated device flushes paid (per
                                  ///< commit sync, per batch grouped).

  // Engine-as-a-service front end (src/server, src/engine sessions).
  Counter server_accepted;        ///< Transactions admitted past the
                                  ///< in-flight budget (session Begins that
                                  ///< reached the protocol).
  Counter server_shed;            ///< Requests answered retry-later: the
                                  ///< in-flight budget, the WAL pipeline
                                  ///< backlog bound, or a full per-session
                                  ///< queue refused them.
  Counter server_requests;        ///< Wire request frames processed.
  Counter server_sessions_opened; ///< Sessions ever opened (engine-level).
  Counter server_sessions_closed; ///< Sessions closed; opened - closed =
                                  ///< active_sessions in reports.
  Counter server_wire_errors;     ///< Malformed/corrupt frames answered
                                  ///< with an error (connection dropped).
  Histogram server_queue_depth;   ///< Per-session request-queue depth
                                  ///< sampled at every enqueue.
  Histogram server_inflight;      ///< Admitted in-flight transactions
                                  ///< sampled at every admission.
  Counter server_retries;         ///< COMMIT resends answered from the
                                  ///< idempotency-token table (exactly-once
                                  ///< replays, not re-executions).
  Counter server_lease_expired;   ///< Idle sessions reclaimed by the
                                  ///< server's lease timer (in-flight
                                  ///< transaction rolled back, slot freed).
  Counter engine_retired_tx;      ///< Terminated transactions retired from
                                  ///< the controller's live scan set.

  /// Multi-line human-readable dump (omits never-touched members).
  std::string Summary() const;

  /// The full structure as a pretty-printed JSON object — the `metrics`
  /// section of the run-report schema (see common/report.h, which also
  /// provides the DOM-level MetricsJson()).
  std::string ToJson() const;

  void Reset();
};

}  // namespace nonserial

#endif  // NONSERIAL_COMMON_METRICS_H_
