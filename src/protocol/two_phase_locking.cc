#include "protocol/two_phase_locking.h"

#include <algorithm>

#include "common/logging.h"

namespace nonserial {

TwoPhaseLockingController::TwoPhaseLockingController(VersionStore* store,
                                                     Options options)
    : store_(store),
      options_(std::move(options)),
      num_groups_(static_cast<int>(options_.objects.size()) + 1),
      table_(store->num_entities() *
             (options_.predicatewise
                  ? static_cast<int>(options_.objects.size()) + 1
                  : 1)) {
  if (!options_.predicatewise) num_groups_ = 1;
  groups_of_entity_.resize(store_->num_entities());
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    if (!options_.predicatewise) {
      groups_of_entity_[e] = {0};
      continue;
    }
    for (size_t g = 0; g < options_.objects.size(); ++g) {
      if (options_.objects[g].contains(e)) {
        groups_of_entity_[e].push_back(static_cast<int>(g));
      }
    }
    if (groups_of_entity_[e].empty()) {
      // Catch-all group for entities mentioned in no conjunct.
      groups_of_entity_[e] = {num_groups_ - 1};
    }
  }
}

const std::vector<int>& TwoPhaseLockingController::GroupsOf(
    EntityId e) const {
  return groups_of_entity_[e];
}

int TwoPhaseLockingController::KeyFor(EntityId e, int group) const {
  return options_.predicatewise ? e * num_groups_ + group : e;
}

void TwoPhaseLockingController::Register(int tx, TxProfile profile) {
  if (tx >= static_cast<int>(txs_.size())) txs_.resize(tx + 1);
  txs_[tx].profile = std::move(profile);
}

ReqResult TwoPhaseLockingController::Begin(int tx) {
  TxState& state = txs_[tx];
  // Chained execution: a serializable baseline cannot let a successor
  // observe a predecessor's output before the predecessor commits.
  for (int pred : state.profile.predecessors) {
    if (!txs_[pred].committed) {
      commit_waiters_[pred].insert(tx);
      Emit(TraceEvent::Kind::kCommitWait, tx, pred);
      return ReqResult::kBlocked;
    }
  }
  state.running = true;
  state.own_writes.clear();
  state.reads.clear();
  state.ops_completed = 0;
  state.remaining_in_group.clear();
  state.future_writes.clear();
  auto it = options_.planned_ops.find(tx);
  if (options_.predicatewise) {
    NONSERIAL_CHECK(it != options_.planned_ops.end())
        << "predicate-wise 2PL needs planned ops for tx " << tx;
  }
  if (it != options_.planned_ops.end()) {
    for (const PlannedOp& op : it->second) {
      if (options_.predicatewise) {
        for (int g : GroupsOf(op.entity)) ++state.remaining_in_group[g];
      }
      if (options_.avoid_upgrades && op.is_write) {
        state.future_writes.insert(op.entity);
      }
    }
  }
  return ReqResult::kGranted;
}

bool TwoPhaseLockingController::WaitCycles(
    int requester, const std::vector<int>& holders) const {
  // DFS from each holder through waits_for_; a path back to the requester
  // means blocking would close a cycle.
  std::vector<int> stack(holders.begin(), holders.end());
  std::set<int> seen(holders.begin(), holders.end());
  while (!stack.empty()) {
    int current = stack.back();
    stack.pop_back();
    if (current == requester) return true;
    auto it = waits_for_.find(current);
    if (it == waits_for_.end()) continue;
    for (int next : it->second) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

ReqResult TwoPhaseLockingController::AcquireKeys(int tx, EntityId e,
                                                 SxLockTable::Mode mode) {
  // A retry recomputes the requester's waits-for edges from scratch; stale
  // edges from a previous blocking episode would manufacture phantom
  // deadlock cycles.
  waits_for_.erase(tx);
  std::vector<int> all_conflicts;
  for (int g : GroupsOf(e)) {
    int key = KeyFor(e, g);
    std::vector<int> conflicts;
    if (!table_.TryAcquire(tx, key, mode, &conflicts)) {
      all_conflicts.insert(all_conflicts.end(), conflicts.begin(),
                           conflicts.end());
      key_waiters_[key].insert(tx);
    }
  }
  if (all_conflicts.empty()) {
    Emit(TraceEvent::Kind::kLockGrant, tx, -1, e);
    return ReqResult::kGranted;
  }
  if (WaitCycles(tx, all_conflicts)) {
    ++stats_.deadlock_aborts;
    Emit(TraceEvent::Kind::kDeadlockVictim, tx, all_conflicts.front(), e);
    return ReqResult::kAborted;
  }
  ++stats_.lock_waits;
  waits_for_[tx].insert(all_conflicts.begin(), all_conflicts.end());
  Emit(TraceEvent::Kind::kLockBlock, tx, all_conflicts.front(), e);
  return ReqResult::kBlocked;
}

void TwoPhaseLockingController::MarkOpDone(int tx, EntityId e) {
  if (!options_.predicatewise) return;
  TxState& state = txs_[tx];
  for (int g : GroupsOf(e)) {
    auto it = state.remaining_in_group.find(g);
    NONSERIAL_CHECK(it != state.remaining_in_group.end());
    if (--it->second == 0) {
      // Done with this conjunct: shrink phase for this group starts now.
      for (int key : table_.KeysHeldBy(tx)) {
        if (key % num_groups_ == g) {
          table_.Release(tx, key);
          auto waiters = key_waiters_.find(key);
          if (waiters != key_waiters_.end()) {
            for (int waiter : waiters->second) Wake(waiter);
            key_waiters_.erase(waiters);
          }
          ++stats_.group_releases;
          Emit(TraceEvent::Kind::kGroupRelease, tx, g, e);
        }
      }
    }
  }
}

ReqResult TwoPhaseLockingController::Read(int tx, EntityId e, Value* out) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  SxLockTable::Mode mode = state.future_writes.contains(e)
                               ? SxLockTable::Mode::kExclusive
                               : SxLockTable::Mode::kShared;
  ReqResult result = AcquireKeys(tx, e, mode);
  if (result != ReqResult::kGranted) return result;
  waits_for_.erase(tx);
  auto own = state.own_writes.find(e);
  *out = own != state.own_writes.end()
             ? own->second
             : store_->Read(VersionRef{e, store_->LatestCommittedIndex(e)});
  state.reads[e] = *out;
  Emit(TraceEvent::Kind::kRead, tx, -1, e, *out);
  MarkOpDone(tx, e);
  return ReqResult::kGranted;
}

ReqResult TwoPhaseLockingController::Write(int tx, EntityId e, Value value) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  ReqResult result = AcquireKeys(tx, e, SxLockTable::Mode::kExclusive);
  if (result != ReqResult::kGranted) return result;
  waits_for_.erase(tx);
  store_->Append(e, value, tx);
  state.own_writes[e] = value;
  Emit(TraceEvent::Kind::kWrite, tx, -1, e, value);
  return ReqResult::kGranted;
}

void TwoPhaseLockingController::WriteDone(int tx, EntityId e) {
  // Write locks are held to commit under 2PL; the write duration only
  // delays the predicate-wise group-release accounting.
  MarkOpDone(tx, e);
}

ReqResult TwoPhaseLockingController::Commit(int tx) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  ValueVector view = store_->LatestCommittedSnapshot();
  for (const auto& [e, v] : state.reads) view[e] = v;
  for (const auto& [e, v] : state.own_writes) view[e] = v;
  if (!state.profile.output.Eval(view)) return ReqResult::kAborted;
  store_->CommitWriter(tx);
  ReleaseAllLocks(tx);
  state.running = false;
  state.committed = true;
  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  Emit(TraceEvent::Kind::kCommitted, tx);
  return ReqResult::kGranted;
}

void TwoPhaseLockingController::Abort(int tx) {
  TxState& state = txs_[tx];
  store_->RollbackWriter(tx);
  ReleaseAllLocks(tx);
  waits_for_.erase(tx);
  // Erase-and-prune: emptied waiter sets must not stay behind as map
  // entries, or the maps grow without bound under abort/restart churn
  // (every lock key a transaction ever blocked on would leave a tombstone).
  for (auto it = key_waiters_.begin(); it != key_waiters_.end();) {
    it->second.erase(tx);
    it = it->second.empty() ? key_waiters_.erase(it) : std::next(it);
  }
  for (auto it = commit_waiters_.begin(); it != commit_waiters_.end();) {
    it->second.erase(tx);
    it = it->second.empty() ? commit_waiters_.erase(it) : std::next(it);
  }
  state.running = false;
  state.own_writes.clear();
  state.reads.clear();
  Emit(TraceEvent::Kind::kAborted, tx);
}

size_t TwoPhaseLockingController::WaiterFootprint() const {
  return key_waiters_.size() + commit_waiters_.size() + waits_for_.size();
}

void TwoPhaseLockingController::ReleaseAllLocks(int tx) {
  for (int key : table_.ReleaseAll(tx)) {
    auto waiters = key_waiters_.find(key);
    if (waiters != key_waiters_.end()) {
      for (int waiter : waiters->second) Wake(waiter);
      key_waiters_.erase(waiters);
    }
  }
}

void TwoPhaseLockingController::Wake(int tx) { wakeups_.insert(tx); }

std::vector<int> TwoPhaseLockingController::TakeWakeups() {
  std::vector<int> out(wakeups_.begin(), wakeups_.end());
  wakeups_.clear();
  return out;
}

std::vector<int> TwoPhaseLockingController::TakeForcedAborts() { return {}; }

}  // namespace nonserial
