#include "protocol/trace.h"

#include "common/strings.h"

namespace nonserial {

const char* TraceEvent::KindName(Kind kind) {
  switch (kind) {
    case Kind::kValidated:
      return "validated";
    case Kind::kValidationWait:
      return "validation-wait";
    case Kind::kRead:
      return "read";
    case Kind::kWrite:
      return "write";
    case Kind::kReEval:
      return "re-eval";
    case Kind::kReAssign:
      return "re-assign";
    case Kind::kDeltaRevalidate:
      return "delta-revalidate";
    case Kind::kCacheInvalidate:
      return "cache-invalidate";
    case Kind::kPoAbort:
      return "po-abort";
    case Kind::kCascadeAbort:
      return "cascade-abort";
    case Kind::kInjectedAbort:
      return "injected-abort";
    case Kind::kCommitWait:
      return "commit-wait";
    case Kind::kCommitted:
      return "committed";
    case Kind::kAborted:
      return "aborted";
    case Kind::kRetired:
      return "retired";
    case Kind::kLockGrant:
      return "lock-grant";
    case Kind::kLockBlock:
      return "lock-block";
    case Kind::kDeadlockVictim:
      return "deadlock-victim";
    case Kind::kGroupRelease:
      return "group-release";
    case Kind::kTsDraw:
      return "ts-draw";
    case Kind::kTsAbort:
      return "ts-abort";
    case Kind::kGroupStart:
      return "group-start";
    case Kind::kGroupCommit:
      return "group-commit";
    case Kind::kGroupReset:
      return "group-reset";
    case Kind::kCheckpoint:
      return "checkpoint";
    case Kind::kCompaction:
      return "compaction";
    case Kind::kCorruptionDetected:
      return "corruption-detected";
    case Kind::kWalBatchFlush:
      return "wal-batch-flush";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::string out;
  if (!protocol.empty()) out += StrCat("[", protocol, "] ");
  out += StrCat(KindName(kind), " tx=", tx);
  if (other >= 0) out += StrCat(" peer=", other);
  if (entity != kInvalidEntity) out += StrCat(" entity=", entity);
  if (kind == Kind::kRead || kind == Kind::kWrite ||
      kind == Kind::kValidated || kind == Kind::kTsDraw) {
    out += StrCat(" value=", value);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::OfKind(TraceEvent::Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

std::map<std::string, std::map<std::string, int64_t>> TraceRecorder::Tally()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::map<std::string, int64_t>> out;
  for (const TraceEvent& event : events_) {
    ++out[event.protocol][TraceEvent::KindName(event.kind)];
  }
  return out;
}

}  // namespace nonserial
