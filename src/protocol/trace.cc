#include "protocol/trace.h"

#include "common/strings.h"

namespace nonserial {
namespace {

const char* KindName(CepEvent::Kind kind) {
  switch (kind) {
    case CepEvent::Kind::kValidated:
      return "validated";
    case CepEvent::Kind::kValidationWait:
      return "validation-wait";
    case CepEvent::Kind::kRead:
      return "read";
    case CepEvent::Kind::kWrite:
      return "write";
    case CepEvent::Kind::kReEval:
      return "re-eval";
    case CepEvent::Kind::kReAssign:
      return "re-assign";
    case CepEvent::Kind::kPoAbort:
      return "po-abort";
    case CepEvent::Kind::kCascadeAbort:
      return "cascade-abort";
    case CepEvent::Kind::kInjectedAbort:
      return "injected-abort";
    case CepEvent::Kind::kCommitWait:
      return "commit-wait";
    case CepEvent::Kind::kCommitted:
      return "committed";
    case CepEvent::Kind::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace

std::string CepEvent::ToString() const {
  std::string out = StrCat(KindName(kind), " tx=", tx);
  if (other >= 0) out += StrCat(" peer=", other);
  if (entity != kInvalidEntity) out += StrCat(" entity=", entity);
  if (kind == Kind::kRead || kind == Kind::kWrite) {
    out += StrCat(" value=", value);
  }
  return out;
}

std::vector<CepEvent> CepTraceRecorder::OfKind(CepEvent::Kind kind) const {
  std::vector<CepEvent> out;
  for (const CepEvent& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

}  // namespace nonserial
