#include "protocol/nested_cep.h"

#include "common/logging.h"

namespace nonserial {

NestedCepController::NestedCepController(VersionStore* top_store,
                                         Options options)
    : top_store_(top_store),
      options_(std::move(options)),
      top_cep_(top_store) {
  groups_.resize(options_.groups.size());
  // Register the groups as the top scope's transactions.
  for (size_t g = 0; g < options_.groups.size(); ++g) {
    const NestedGroup& group = options_.groups[g];
    TxProfile profile;
    profile.name = group.name;
    profile.input = group.input;
    profile.output = group.output;
    profile.predecessors = group.predecessors;
    top_cep_.Register(static_cast<int>(g), profile);
  }
}

void NestedCepController::SetObserver(TraceSink* sink) {
  ConcurrencyController::SetObserver(sink);
  top_cep_.SetObserver(sink);
  for (GroupState& group : groups_) {
    if (group.cep != nullptr) group.cep->SetObserver(sink);
  }
}

int NestedCepController::GroupOf(int tx) const {
  NONSERIAL_CHECK_LT(tx, static_cast<int>(options_.group_of_tx.size()))
      << "transaction " << tx << " has no group mapping";
  int g = options_.group_of_tx[tx];
  NONSERIAL_CHECK_GE(g, 0);
  NONSERIAL_CHECK_LT(g, static_cast<int>(groups_.size()));
  return g;
}

bool NestedCepController::GroupActive(int g) const {
  return groups_[g].phase == GroupPhase::kActive;
}

bool NestedCepController::GroupCommitted(int g) const {
  return groups_[g].phase == GroupPhase::kCommitted;
}

void NestedCepController::Register(int tx, TxProfile profile) {
  if (tx >= static_cast<int>(profiles_.size())) profiles_.resize(tx + 1);
  int g = GroupOf(tx);
  for (int pred : profile.predecessors) {
    NONSERIAL_CHECK_EQ(GroupOf(pred), g)
        << "member partial orders must stay within a group; cross-group "
           "ordering belongs to the group predecessors";
  }
  profiles_[tx] = std::move(profile);
  groups_[g].members.insert(tx);
}

ReqResult NestedCepController::EnsureGroupStarted(int g, int tx) {
  GroupState& group = groups_[g];
  switch (group.phase) {
    case GroupPhase::kActive:
      return ReqResult::kGranted;
    case GroupPhase::kCommitted:
      NONSERIAL_CHECK(false) << "member " << tx << " begins after group "
                             << g << " committed";
      return ReqResult::kAborted;
    case GroupPhase::kIdle:
      break;
  }
  // Top-level definition + validation of the group transaction.
  ReqResult result = top_cep_.Begin(g);
  if (result != ReqResult::kGranted) {
    if (result == ReqResult::kBlocked) group.begin_waiters.insert(tx);
    return result;
  }
  // Consume the assigned input versions at the top level: the group has
  // observably "read" X(G), so a later predecessor write is a genuine
  // partial-order invalidation (Figure 4's abort branch) at this level.
  const ValueVector* seed = top_cep_.InputView(g);
  NONSERIAL_CHECK(seed != nullptr);
  group.seed = *seed;
  for (EntityId e : options_.groups[g].input.Entities()) {
    Value ignored = 0;
    ReqResult read = top_cep_.Read(g, e, &ignored);
    if (read == ReqResult::kBlocked) {
      // A write is in flight at the top level; retry the start later.
      group.begin_waiters.insert(tx);
      return ReqResult::kBlocked;
    }
    NONSERIAL_CHECK(read == ReqResult::kGranted);
  }
  // Open the scope: a private store seeded with X(G) and a private CEP.
  group.store = std::make_unique<VersionStore>(group.seed);
  group.cep = std::make_unique<CorrectExecutionProtocol>(group.store.get());
  group.cep->SetObserver(observer());
  for (int member : group.members) {
    group.cep->Register(member, profiles_[member]);
  }
  group.group_committed.clear();
  group.published = false;
  group.phase = GroupPhase::kActive;
  ++stats_.group_starts;
  Emit(TraceEvent::Kind::kGroupStart, g);
  for (int waiter : group.begin_waiters) wakeups_.insert(waiter);
  group.begin_waiters.clear();
  return ReqResult::kGranted;
}

ReqResult NestedCepController::Begin(int tx) {
  int g = GroupOf(tx);
  ReqResult started = EnsureGroupStarted(g, tx);
  if (started != ReqResult::kGranted) {
    DrainChildren();
    return started;
  }
  ReqResult result = groups_[g].cep->Begin(tx);
  DrainChildren();
  return result;
}

ReqResult NestedCepController::Read(int tx, EntityId e, Value* out) {
  GroupState& group = groups_[GroupOf(tx)];
  NONSERIAL_CHECK(group.phase == GroupPhase::kActive);
  ReqResult result = group.cep->Read(tx, e, out);
  DrainChildren();
  return result;
}

ReqResult NestedCepController::Write(int tx, EntityId e, Value value) {
  GroupState& group = groups_[GroupOf(tx)];
  NONSERIAL_CHECK(group.phase == GroupPhase::kActive);
  ReqResult result = group.cep->Write(tx, e, value);
  DrainChildren();
  return result;
}

void NestedCepController::WriteDone(int tx, EntityId e) {
  GroupState& group = groups_[GroupOf(tx)];
  if (group.phase != GroupPhase::kActive) return;  // Reset raced the event.
  group.cep->WriteDone(tx, e);
  DrainChildren();
}

ReqResult NestedCepController::Commit(int tx) {
  int g = GroupOf(tx);
  GroupState& group = groups_[g];
  if (group.phase == GroupPhase::kCommitted) {
    // The group (and with it this member) became durable earlier.
    return ReqResult::kGranted;
  }
  NONSERIAL_CHECK(group.phase == GroupPhase::kActive);
  if (!group.group_committed.contains(tx)) {
    ReqResult result = group.cep->Commit(tx);
    if (result != ReqResult::kGranted) {
      DrainChildren();
      return result;
    }
    group.group_committed.insert(tx);  // Committed relative to the group.
  }
  if (group.group_committed != group.members) {
    // Durability waits for the siblings; woken when the group commits.
    return ReqResult::kBlocked;
  }
  ReqResult result = TryGroupCommit(g);
  DrainChildren();
  return result;
}

ReqResult NestedCepController::TryGroupCommit(int g) {
  GroupState& group = groups_[g];
  if (!group.published) {
    // Publish the scope's net effect as the group's writes in the parent.
    ValueVector final_state = group.store->LatestCommittedSnapshot();
    for (EntityId e = 0; e < static_cast<EntityId>(final_state.size());
         ++e) {
      if (final_state[e] == group.seed[e]) continue;
      ReqResult write = top_cep_.Write(g, e, final_state[e]);
      NONSERIAL_CHECK(write == ReqResult::kGranted);  // Writes never block.
      top_cep_.WriteDone(g, e);
    }
    group.published = true;
  }
  ReqResult result = top_cep_.Commit(g);
  switch (result) {
    case ReqResult::kGranted: {
      group.phase = GroupPhase::kCommitted;
      ++stats_.group_commits;
      Emit(TraceEvent::Kind::kGroupCommit, g);
      for (int member : group.members) wakeups_.insert(member);
      return ReqResult::kGranted;
    }
    case ReqResult::kBlocked:
      // Top-level commit rules (predecessor groups, assigned authors) not
      // yet met; members stay parked and are woken via the top wakeups.
      return ReqResult::kBlocked;
    case ReqResult::kAborted:
      // O_G failed or a commit-wait cycle: the whole scope must redo.
      ResetGroup(g);
      return ReqResult::kAborted;
  }
  return ReqResult::kAborted;
}

void NestedCepController::ResetGroup(int g) {
  GroupState& group = groups_[g];
  if (group.phase == GroupPhase::kIdle) return;
  NONSERIAL_CHECK(group.phase != GroupPhase::kCommitted)
      << "cannot reset a durably committed group";
  top_cep_.Abort(g);  // Rolls back published writes and top-level locks.
  group.store.reset();
  group.cep.reset();
  group.group_committed.clear();
  group.published = false;
  group.phase = GroupPhase::kIdle;
  ++stats_.group_resets;
  Emit(TraceEvent::Kind::kGroupReset, g);
  for (int member : group.members) forced_aborts_.insert(member);
}

void NestedCepController::Abort(int tx) {
  int g = GroupOf(tx);
  GroupState& group = groups_[g];
  if (group.phase != GroupPhase::kActive) return;  // Reset already handled.
  group.cep->Abort(tx);
  group.group_committed.erase(tx);
  DrainChildren();
}

void NestedCepController::DrainChildren() {
  // Child-scope signals pass through; top-scope signals translate from
  // group granularity to member granularity.
  for (GroupState& group : groups_) {
    if (group.phase != GroupPhase::kActive || group.cep == nullptr) continue;
    for (int tx : group.cep->TakeWakeups()) wakeups_.insert(tx);
    for (int tx : group.cep->TakeForcedAborts()) {
      forced_aborts_.insert(tx);
      group.group_committed.erase(tx);
    }
  }
  for (int g : top_cep_.TakeWakeups()) {
    GroupState& group = groups_[g];
    for (int waiter : group.begin_waiters) wakeups_.insert(waiter);
    group.begin_waiters.clear();
    if (group.phase == GroupPhase::kActive &&
        group.group_committed == group.members && !group.members.empty()) {
      // Group was waiting at the top-level commit: retry through any
      // member (they are all parked in Commit).
      for (int member : group.members) wakeups_.insert(member);
    } else if (group.phase == GroupPhase::kIdle) {
      // Group start was blocked (validation / Rv): poke the members.
      for (int member : group.members) wakeups_.insert(member);
    }
  }
  for (int g : top_cep_.TakeForcedAborts()) {
    // Group-level partial-order invalidation or cascade: abort the group
    // transaction at the top and redo the whole scope.
    ResetGroup(g);
  }
}

std::vector<int> NestedCepController::TakeWakeups() {
  DrainChildren();
  std::vector<int> out(wakeups_.begin(), wakeups_.end());
  wakeups_.clear();
  return out;
}

std::vector<int> NestedCepController::TakeForcedAborts() {
  std::vector<int> out(forced_aborts_.begin(), forced_aborts_.end());
  forced_aborts_.clear();
  return out;
}

}  // namespace nonserial
