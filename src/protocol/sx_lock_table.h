#ifndef NONSERIAL_PROTOCOL_SX_LOCK_TABLE_H_
#define NONSERIAL_PROTOCOL_SX_LOCK_TABLE_H_

#include <map>
#include <set>
#include <vector>

#include "predicate/value.h"

namespace nonserial {

/// Classic shared/exclusive lock table used by the two-phase-locking
/// baselines. Keys are opaque ints (plain entities for strict 2PL;
/// entity-times-conjunct composites for predicate-wise 2PL).
///
/// The table has no internal queueing: a failed acquisition reports the
/// conflicting holders so the caller can build waits-for edges and block
/// the requester.
class SxLockTable {
 public:
  enum class Mode { kShared, kExclusive };

  explicit SxLockTable(int num_keys);

  /// Attempts to acquire; on failure returns false and fills `conflicts`
  /// with the holders in the way. Shared-to-exclusive upgrades succeed when
  /// the requester is the sole shared holder.
  bool TryAcquire(int tx, int key, Mode mode, std::vector<int>* conflicts);

  bool HoldsShared(int tx, int key) const;
  bool HoldsExclusive(int tx, int key) const;

  /// Releases whatever `tx` holds on `key`.
  void Release(int tx, int key);

  /// Releases everything `tx` holds; returns the affected keys.
  std::vector<int> ReleaseAll(int tx);

  /// Keys on which `tx` currently holds any lock.
  std::vector<int> KeysHeldBy(int tx) const;

  int num_keys() const { return static_cast<int>(locks_.size()); }

 private:
  struct KeyLocks {
    std::set<int> shared;
    int exclusive = -1;
  };

  std::vector<KeyLocks> locks_;
  std::map<int, std::set<int>> by_tx_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_SX_LOCK_TABLE_H_
