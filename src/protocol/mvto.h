#ifndef NONSERIAL_PROTOCOL_MVTO_H_
#define NONSERIAL_PROTOCOL_MVTO_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "protocol/controller.h"
#include "storage/version_store.h"

namespace nonserial {

/// Multiversion timestamp ordering — the classical multiversion baseline
/// (Bernstein et al. 1987). Transactions receive a timestamp at Begin; a
/// read observes the version with the largest write timestamp not exceeding
/// the reader's, and a write is rejected (transaction aborted) when a
/// younger transaction has already read the version the write would have to
/// follow ("late write").
///
/// Two departures from the textbook protocol, both documented in DESIGN.md:
/// readers wait for the commit of an uncommitted candidate version instead
/// of reading dirty data (avoids cascading aborts), and workload partial
/// orders are enforced by chaining Begin on predecessor commits, as in the
/// 2PL baseline.
class MvtoController : public ConcurrencyController {
 public:
  struct Stats {
    int64_t late_write_aborts = 0;
    int64_t commit_waits = 0;
  };

  explicit MvtoController(VersionStore* store);

  std::string name() const override { return "MVTO"; }
  void Register(int tx, TxProfile profile) override;
  ReqResult Begin(int tx) override;
  ReqResult Read(int tx, EntityId e, Value* out) override;
  ReqResult Write(int tx, EntityId e, Value value) override;
  void WriteDone(int tx, EntityId e) override;
  ReqResult Commit(int tx) override;
  void Abort(int tx) override;
  std::vector<int> TakeWakeups() override;
  std::vector<int> TakeForcedAborts() override;

  const Stats& stats() const { return stats_; }

 private:
  struct VersionMeta {
    int store_index = -1;
    int writer = kInitialWriter;
    int64_t max_read_ts = 0;
    bool committed = false;
  };

  struct TxState {
    TxProfile profile;
    int64_t ts = -1;  ///< -1 when not running.
    bool committed = false;
    std::map<EntityId, Value> own_writes;
    std::map<EntityId, Value> reads;
  };

  /// The version a transaction with timestamp `ts` must observe for `e`:
  /// an iterator into versions_[e] (never end(); the initial version has
  /// timestamp 0).
  std::map<int64_t, VersionMeta>::iterator VisibleVersion(EntityId e,
                                                          int64_t ts);

  void Wake(int tx);

  VersionStore* store_;
  std::vector<TxState> txs_;
  /// Per entity: write-timestamp -> version metadata (live versions only).
  std::vector<std::map<int64_t, VersionMeta>> versions_;
  std::map<int, std::set<int>> commit_waiters_;
  std::set<int> wakeups_;
  int64_t clock_ = 0;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_MVTO_H_
