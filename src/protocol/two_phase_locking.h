#ifndef NONSERIAL_PROTOCOL_TWO_PHASE_LOCKING_H_
#define NONSERIAL_PROTOCOL_TWO_PHASE_LOCKING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "predicate/predicate.h"
#include "protocol/controller.h"
#include "protocol/sx_lock_table.h"
#include "storage/version_store.h"

namespace nonserial {

/// A planned operation of a transaction script, declared up-front so that
/// predicate-wise 2PL can release a conjunct's locks as soon as the
/// transaction's last operation on that conjunct completes.
struct PlannedOp {
  bool is_write = false;
  EntityId entity = kInvalidEntity;
};

/// Strict two-phase locking (the classical baseline the paper argues
/// against for long transactions), with an optional *predicate-wise* mode
/// implementing the PW-2PL idea of Korth et al. 1988: the transaction is
/// two-phase with respect to each conjunct of the consistency constraint
/// separately, so locks protecting one conjunct are released as soon as the
/// transaction is done with that conjunct rather than at commit.
///
/// Transactions ordered by the workload partial order P execute chained:
/// Begin blocks until every predecessor has committed (a serializable
/// system has no other way to let a successor see a predecessor's output).
/// Deadlocks are detected with a waits-for graph; the requester whose wait
/// would close a cycle is aborted.
class TwoPhaseLockingController : public ConcurrencyController {
 public:
  struct Options {
    bool predicatewise = false;
    /// Conjunct objects of the database constraint (predicate-wise mode).
    ObjectSetList objects;
    /// Planned operations per transaction id. Required in predicate-wise
    /// mode; in either mode they enable update-lock discipline.
    std::map<int, std::vector<PlannedOp>> planned_ops;
    /// Update-lock discipline: a read of an entity the transaction will
    /// later write takes the exclusive lock immediately, eliminating
    /// upgrade deadlocks (which otherwise livelock long transactions).
    bool avoid_upgrades = true;
  };

  struct Stats {
    int64_t lock_waits = 0;
    int64_t deadlock_aborts = 0;
    int64_t group_releases = 0;  ///< Predicate-wise early lock releases.
  };

  TwoPhaseLockingController(VersionStore* store, Options options);

  std::string name() const override {
    return options_.predicatewise ? "PW-2PL" : "S2PL";
  }
  void Register(int tx, TxProfile profile) override;
  ReqResult Begin(int tx) override;
  ReqResult Read(int tx, EntityId e, Value* out) override;
  ReqResult Write(int tx, EntityId e, Value value) override;
  void WriteDone(int tx, EntityId e) override;
  ReqResult Commit(int tx) override;
  void Abort(int tx) override;
  std::vector<int> TakeWakeups() override;
  std::vector<int> TakeForcedAborts() override;

  const Stats& stats() const { return stats_; }

  /// Number of entries across the internal waiter/waits-for maps. Zero once
  /// every transaction has committed or aborted; a regression test holds
  /// this flat under long abort/restart churn (the maps once accumulated
  /// one empty-set tombstone per contended lock key forever).
  size_t WaiterFootprint() const;

 private:
  struct TxState {
    TxProfile profile;
    bool running = false;
    bool committed = false;
    std::map<EntityId, Value> own_writes;
    std::map<EntityId, Value> reads;
    /// Predicate-wise: remaining planned ops per lock group.
    std::map<int, int> remaining_in_group;
    /// Entities this transaction's plan eventually writes.
    std::set<EntityId> future_writes;
    int ops_completed = 0;
  };

  /// Lock groups: one per conjunct object plus a catch-all for entities in
  /// no object. Returns group ids for an entity.
  const std::vector<int>& GroupsOf(EntityId e) const;
  int KeyFor(EntityId e, int group) const;

  /// Acquires all lock keys for `e`; returns kGranted/kBlocked/kAborted.
  ReqResult AcquireKeys(int tx, EntityId e, SxLockTable::Mode mode);

  /// Marks one planned op on `e` complete; releases exhausted groups.
  void MarkOpDone(int tx, EntityId e);

  bool WaitCycles(int requester, const std::vector<int>& holders) const;
  void ReleaseAllLocks(int tx);
  void Wake(int tx);

  VersionStore* store_;
  Options options_;
  int num_groups_;  ///< Including the catch-all group.
  SxLockTable table_;
  std::vector<TxState> txs_;
  std::vector<std::vector<int>> groups_of_entity_;
  std::map<int, std::set<int>> key_waiters_;    ///< key -> blocked txs.
  std::map<int, std::set<int>> commit_waiters_; ///< tx -> txs awaiting it.
  std::map<int, std::set<int>> waits_for_;      ///< tx -> holders blocking it.
  std::set<int> wakeups_;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_TWO_PHASE_LOCKING_H_
