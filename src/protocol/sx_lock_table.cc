#include "protocol/sx_lock_table.h"

#include "common/logging.h"

namespace nonserial {

SxLockTable::SxLockTable(int num_keys) : locks_(num_keys) {}

bool SxLockTable::TryAcquire(int tx, int key, Mode mode,
                             std::vector<int>* conflicts) {
  NONSERIAL_CHECK_GE(key, 0);
  NONSERIAL_CHECK_LT(key, num_keys());
  conflicts->clear();
  KeyLocks& kl = locks_[key];
  if (mode == Mode::kShared) {
    if (kl.exclusive != -1 && kl.exclusive != tx) {
      conflicts->push_back(kl.exclusive);
      return false;
    }
    kl.shared.insert(tx);
    by_tx_[tx].insert(key);
    return true;
  }
  // Exclusive request.
  if (kl.exclusive != -1 && kl.exclusive != tx) {
    conflicts->push_back(kl.exclusive);
    return false;
  }
  for (int holder : kl.shared) {
    if (holder != tx) conflicts->push_back(holder);
  }
  if (!conflicts->empty()) return false;
  kl.exclusive = tx;
  by_tx_[tx].insert(key);
  return true;
}

bool SxLockTable::HoldsShared(int tx, int key) const {
  return locks_[key].shared.contains(tx);
}

bool SxLockTable::HoldsExclusive(int tx, int key) const {
  return locks_[key].exclusive == tx;
}

void SxLockTable::Release(int tx, int key) {
  KeyLocks& kl = locks_[key];
  kl.shared.erase(tx);
  if (kl.exclusive == tx) kl.exclusive = -1;
  auto it = by_tx_.find(tx);
  if (it != by_tx_.end()) it->second.erase(key);
}

std::vector<int> SxLockTable::ReleaseAll(int tx) {
  std::vector<int> affected;
  auto it = by_tx_.find(tx);
  if (it == by_tx_.end()) return affected;
  for (int key : it->second) {
    KeyLocks& kl = locks_[key];
    kl.shared.erase(tx);
    if (kl.exclusive == tx) kl.exclusive = -1;
    affected.push_back(key);
  }
  by_tx_.erase(it);
  return affected;
}

std::vector<int> SxLockTable::KeysHeldBy(int tx) const {
  auto it = by_tx_.find(tx);
  if (it == by_tx_.end()) return {};
  return std::vector<int>(it->second.begin(), it->second.end());
}

}  // namespace nonserial
