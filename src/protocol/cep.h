#ifndef NONSERIAL_PROTOCOL_CEP_H_
#define NONSERIAL_PROTOCOL_CEP_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "graph/digraph.h"
#include "predicate/assignment_search.h"
#include "predicate/eval_cache.h"
#include "protocol/controller.h"
#include "protocol/ks_lock_manager.h"
#include "protocol/trace.h"
#include "storage/version_store.h"

namespace nonserial {

/// The paper's Correct Execution Protocol (Section 5.1): an optimistic
/// multiversion protocol with four phases —
///
///  1. *definition*: the transaction's specification (I_t, O_t) and its
///     place in the partial order are registered;
///  2. *validation*: Rv (read-for-validation) locks are placed on every
///     entity of the input constraint and a version assignment X(t)
///     satisfying I_t is searched over the allowable-version sets D;
///  3. *execution*: reads upgrade Rv -> R and observe the assigned version;
///     writes are never blocked — each creates a new version under a short
///     W lock and triggers the Figure 4 re-evaluation of current readers;
///  4. *termination*: a transaction commits only when its P-predecessors
///     and the authors of every version it actually read have committed and
///     its output condition O_t holds.
///
/// Re-evaluation (Figure 4): when a predecessor W of a reader writes a
/// version the reader should have observed, the reader is re-assigned if it
/// has not yet read the entity (Rv lock), and aborted for partial-order
/// invalidation if it has (R lock). Aborts cascade to transactions that
/// read versions of a rolled-back writer.
///
/// Theorem 2 of the paper: every history this protocol admits is a correct
/// execution; the simulator re-verifies this with the Section 3 checker.
///
/// Thread safety: the engine is a monitor — one internal mutex guards the
/// per-transaction state, the precedence graph, and the waiter maps, so any
/// number of client threads may drive different transactions concurrently.
/// The expensive part of validation (the NP-complete satisfying-assignment
/// search) deliberately runs *outside* the monitor: Begin snapshots the
/// allowable-version candidates plus per-entity chain-size stamps under the
/// lock, searches unlocked, then revalidates the stamps before installing
/// the assignment (a changed stamp or a dead chosen version forces a
/// rescan, counted in metrics as validation_rescans). The Rv locks held
/// throughout make concurrent writes trigger Figure 4 re-evaluation, so the
/// optimistic window never admits an assignment the locked protocol would
/// have rejected.
///
/// Per-transaction calls (Begin/Read/Write/WriteDone/Commit/Abort for one
/// tx id) must stay on a single thread at a time — that thread owns the
/// transaction's phase transitions; the engine protects everything else.
class CorrectExecutionProtocol : public ConcurrencyController {
 public:
  /// Engine knobs; all optional (the defaults run the plain protocol).
  struct Options {
    /// Strategy for the satisfying-assignment search (assignment_search.h).
    SearchMode search_mode = SearchMode::kPruned;
    /// Sink for lock/validation/abort counters; not owned, may be null.
    ProtocolMetrics* metrics = nullptr;
    /// Bound on optimistic out-of-lock validation rescans per Begin. Under
    /// a write storm on a hot entity the unlocked search can be invalidated
    /// every pass (livelock); after this many rescans the attempt falls
    /// back to searching inside the engine lock (the locked Figure 4 path),
    /// which cannot be invalidated. Counted as validation_starved.
    int max_validation_rescans = 8;
    /// Test seam: invoked in the unlocked search window of every optimistic
    /// validation attempt (engine lock NOT held). Lets fault-injection
    /// tests deterministically interleave writes mid-validation. Null in
    /// production.
    std::function<void(int tx)> validation_interference;
    /// Memoized conjunct-evaluation cache shared across validation rescans
    /// and post-hoc verification (predicate/eval_cache.h). Not owned; may
    /// be null (caching disabled). The engine bumps entity epochs on
    /// version installs (Write) and rollbacks (Abort).
    EvalCache* eval_cache = nullptr;
    /// Re-solve invalidated optimistic validation passes as deltas: pin the
    /// entities whose candidate lists did not change to the previously
    /// found choice and search only the changed entities (falling back to a
    /// full search when the pinned problem is unsatisfiable, so admission
    /// is unchanged). Counted as delta_rescans / delta_fallbacks.
    bool delta_revalidate = true;
    /// Transaction retirement: terminated transactions whose successors
    /// have all terminated may be dropped from the live scan set (Retire),
    /// bounding AllowableVersions / cascade-scan cost for long-lived
    /// engines. Retired committed writers' versions are summarized by one
    /// baseline candidate per entity — the store's latest committed
    /// version — which is always in the paper's set D for a root-scope
    /// reader (see AllowableVersions). This *restricts* D (fewer optimistic
    /// candidates from the retired past), so admitted histories stay a
    /// subset of the unretired protocol's: CPC-sound, but verdicts for
    /// workloads that read deep version history can differ. Off by default.
    bool retirement = false;
  };

  /// Per-transaction outcome record used to rebuild a model-layer
  /// TreeExecution for formal verification.
  struct TxRecord {
    std::string name;          ///< Profile name (diagnostics only).
    ValueVector input_state;   ///< X(t): parent input overlaid with assigned versions.
    std::set<int> feeder_txs;  ///< Authors of assigned versions (excluding t_0).
    std::vector<std::pair<EntityId, Value>> writes;  ///< In program order.
    bool committed = false;    ///< True once the commit record was cut.
  };

  /// Decision counters, accumulated over the engine's lifetime.
  struct Stats {
    int64_t validations = 0;          ///< Successful version assignments.
    int64_t validation_retries = 0;   ///< Unsatisfiable or lock-blocked.
    int64_t validation_rescans = 0;   ///< Optimistic search invalidated.
    int64_t validation_starved = 0;   ///< Rescan cap hit; in-lock fallback.
    int64_t injected_aborts = 0;      ///< Fault-injection (chaos) aborts.
    int64_t reassigns = 0;            ///< Figure 4 re-assign invocations.
    int64_t reassign_failures = 0;    ///< Re-assign found no assignment.
    int64_t reevals = 0;              ///< Figure 4 routine invocations.
    int64_t po_aborts = 0;            ///< Partial-order invalidation aborts.
    int64_t cascade_aborts = 0;       ///< Aborts of readers of dead versions.
    int64_t delta_rescans = 0;        ///< Rescans solved as deltas.
    int64_t delta_fallbacks = 0;      ///< Delta passes that re-ran in full.
    int64_t retired = 0;              ///< Transactions retired (Options::retirement).
    SearchStats search;               ///< Aggregate search effort.
  };

  /// Binds the engine to a store with default options. Not owned; the
  /// store must outlive the engine.
  explicit CorrectExecutionProtocol(VersionStore* store);
  /// As above with explicit options (metrics/cache pointers not owned).
  CorrectExecutionProtocol(VersionStore* store, Options options);

  std::string name() const override { return "CEP"; }
  void Register(int tx, TxProfile profile) override;
  ReqResult Begin(int tx) override;
  ReqResult Read(int tx, EntityId e, Value* out) override;
  ReqResult Write(int tx, EntityId e, Value value) override;
  void WriteDone(int tx, EntityId e) override;
  ReqResult Commit(int tx) override;
  void Abort(int tx) override;
  std::vector<int> TakeWakeups() override;
  std::vector<int> TakeForcedAborts() override;

  /// Retires `tx` (Options::retirement must be on): drops it from the live
  /// scan set and reclaims its heavy per-attempt state (assignment, views,
  /// write log) — the committed TxRecord in records() survives for the
  /// verifier. Eligible only when the transaction is terminal (committed,
  /// or idle after an abort) and every direct P-successor is already
  /// retired; by induction no *live* transaction is then a successor of a
  /// retired one, which is what keeps the predecessor-domination and
  /// shadowing scans complete over the live set alone. Returns false when
  /// ineligible (caller retries after the successors terminate).
  bool Retire(int tx) override;
  bool IsRetired(int tx) const override;

  /// Attaches a client idempotency token to `tx`'s next commit: CommitLocked
  /// logs it as a kCommitToken WAL record immediately before the tx payload,
  /// so the token is durable iff the commit is. 0 clears (no token).
  void SetCommitToken(int tx, uint64_t token);

  /// Snapshot of the counters (copies under the engine lock).
  Stats stats() const;

  /// Records for committed transactions (indexed by tx id; uncommitted
  /// transactions have committed == false). Only safe once driving threads
  /// have quiesced — the verifier runs after the drivers join.
  const std::vector<TxRecord>& records() const { return records_; }

  // Trace emission uses the base-interface SetObserver (controller.h);
  // events are emitted under the engine lock, in decision order.

  /// The input version state X(t) currently assigned to an executing
  /// transaction (nullptr before validation or after termination). Used by
  /// the hierarchical protocol to seed a child scope. Single-threaded use
  /// only (returns a pointer into engine state).
  const ValueVector* InputView(int tx) const;

  /// True iff the transaction has committed.
  bool IsCommitted(int tx) const;

  /// Fault injection: dooms an in-flight attempt of `tx` exactly like a
  /// Figure 4 invalidation would (no-op if tx is idle or committed). The
  /// owning thread observes the forced-abort signal and processes the
  /// Abort itself; counted as injected_aborts. Used by chaos mode.
  void InjectAbort(int tx);

  /// Crash recovery: marks a registered transaction committed and adopts
  /// its durable commit record (from WAL recovery). The recovered store
  /// must already contain the transaction's committed versions. Call after
  /// Register and before driving threads start.
  void RestoreCommitted(int tx, TxRecord record);

  /// Total number of map entries across the waiter maps (validation, read,
  /// commit). Must be zero once every transaction has committed or
  /// aborted — leaked entries here are unbounded memory growth under churn.
  size_t WaiterFootprint() const;

  /// Version references currently assigned to validating or executing
  /// transactions — the pin set for VersionStore::CollectObsolete.
  std::vector<VersionRef> PinnedVersions() const;

 private:
  enum class Phase {
    kIdle,        ///< Registered, no active attempt.
    kValidating,  ///< Begin in progress (Rv locks / searching versions).
    kExecuting,   ///< Version assignment done; reads/writes flowing.
    kCommitted,
  };

  struct TxState {
    TxProfile profile;
    Phase phase = Phase::kIdle;
    /// Set by ForceAbort (Figure 4 invalidation or cascade): the attempt
    /// must not commit. Commit checks this under the engine lock, so a
    /// forced abort and a racing Commit from the owning thread serialize
    /// correctly even after the driver drained the signal. Cleared when the
    /// owner processes the Abort.
    bool doomed = false;
    std::set<EntityId> input_entities;        ///< N_t.
    std::map<EntityId, VersionRef> assigned;  ///< X(t) over N_t.
    std::set<EntityId> reads_done;            ///< Entities actually read.
    std::map<EntityId, int> own_latest;       ///< Own latest version index.
    std::vector<std::pair<EntityId, Value>> write_log;
    ValueVector input_view;  ///< X(t) as a full vector.
    ValueVector local_view;  ///< input_view overlaid with own writes.
    /// Client idempotency token for the next commit (0 = none). Cleared
    /// with the rest of the attempt state on abort — a retried attempt must
    /// re-announce its token.
    uint64_t commit_token = 0;
    /// Precomputed clause hashes of the profile's predicates, bound to
    /// Options::eval_cache (null when caching is off). Shared_ptr so the
    /// abort-time state reset can carry them over without rehashing; they
    /// depend only on predicate *structure*, which Register fixed.
    std::shared_ptr<const CachedPredicate> cached_input;
    std::shared_ptr<const CachedPredicate> cached_output;
  };

  /// Candidate snapshot for one optimistic validation attempt: per-entity
  /// refs/values plus the chain-size stamps they were gathered under. The
  /// values live in one columnar arena (candidate_buffer.h) — the search
  /// consumes them as contiguous stripes without re-materialization.
  struct CandidateSnapshot {
    std::vector<std::vector<VersionRef>> refs;  ///< Per entity.
    CandidateBuffer values;                     ///< Parallel to refs.
    std::map<EntityId, int> stamps;             ///< ChainSize per N_t entity.
  };

  bool Reaches(int from, int to) const;  ///< P+ over registered txs.

  /// Computes the allowable-version candidates for entity `e` as seen by
  /// `tx` (the set D of Section 5.1), optionally pinning the candidate set
  /// to a specific version (re-assign) via `pin`.
  std::vector<VersionRef> AllowableVersions(int tx, EntityId e) const;

  /// Gathers the candidate sets for `tx` under the engine lock.
  CandidateSnapshot GatherCandidates(
      int tx, const std::map<EntityId, VersionRef>& pinned) const;

  /// True iff the snapshot still reflects the store: stamps unchanged and
  /// the chosen refs alive. Caller holds the engine lock.
  bool SnapshotStillValid(const CandidateSnapshot& snapshot,
                          const std::vector<int>& choice) const;

  /// Installs a found assignment into `tx`'s state. Caller holds the lock.
  void InstallAssignment(int tx, const CandidateSnapshot& snapshot,
                         const std::vector<int>& choice);

  /// Runs the version-assignment search for `tx` with per-entity pinned
  /// refs (entities already read, or the re-assign target) synchronously
  /// under the engine lock. Returns true and installs on success.
  bool SolveAssignment(int tx, const std::map<EntityId, VersionRef>& pinned);

  /// Figure 4: reacts to `writer` creating a new version of `e`.
  void ReEvaluate(int writer, EntityId e);

  /// Re-assign of Figure 4: `reader` must adopt `writer`'s latest version
  /// of `e`; unread entities may be re-chosen. On failure the reader is
  /// force-aborted.
  void ReAssign(int reader, int writer, EntityId e);

  /// Commit body, under the engine lock. On kGranted, `*durable` holds the
  /// WAL ack the caller redeems AFTER dropping the lock (so committers can
  /// share a group-commit flush instead of serializing on the monitor).
  ReqResult CommitLocked(int tx, WalCommitHandle* durable);

  void WakeValidationWaiters(EntityId e);
  void Wake(int tx);

  /// Shared tail of a successful validation (either search path): counters,
  /// phase transition, and removal of stale waiter registrations left by
  /// earlier blocked attempts of `tx`. Caller holds the engine lock.
  ReqResult GrantValidation(int tx);

  /// Removes `tx` from every waiter map, pruning entries whose sets empty
  /// out (leaked empty entries grow without bound under churn).
  void DropWaiterEntries(int tx);
  void ForceAbort(int tx, int64_t* counter, CepEvent::Kind reason);

  /// True iff making `tx` wait for `target`'s commit closes a wait cycle.
  bool WouldDeadlock(int tx, int target) const;

  VersionStore* store_;
  Options options_;
  KsLockManager locks_;

  /// Engine lock (monitor). Ordering: mu_ may be held while taking the
  /// store's shard locks or the lock manager's shard mutexes, never the
  /// other way around (neither component calls back into the engine).
  mutable std::mutex mu_;

  /// Deque, not vector, on purpose: sessions Register new transactions
  /// while other transactions' validation searches run outside the engine
  /// lock holding references into their own TxState (Begin's out-of-lock
  /// window). Deque growth never relocates existing elements, so those
  /// references stay valid; a vector's resize would dangle them.
  std::deque<TxState> txs_;
  std::vector<TxRecord> records_;
  /// Registered, unretired transaction ids — the scan set for
  /// AllowableVersions, the abort cascade, and PinnedVersions when
  /// Options::retirement is on (always maintained; cheap either way).
  std::set<int> live_;
  std::vector<char> retired_;  ///< Parallel to txs_; sticky once set.
  Digraph precedence_;  ///< P over transaction ids.
  ValueVector initial_snapshot_;

  /// Entities each blocked-in-validation transaction is waiting on.
  std::map<int, std::set<EntityId>> validation_waiters_;
  /// Readers blocked on an active W lock, per entity.
  std::map<EntityId, std::set<int>> read_waiters_;
  /// Transactions waiting for another transaction's commit.
  std::map<int, std::set<int>> commit_waiters_;

  std::set<int> wakeups_;
  std::set<int> forced_aborts_;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_CEP_H_
