#include "protocol/pw_mvto.h"

#include "common/logging.h"

namespace nonserial {

PwMvtoController::PwMvtoController(VersionStore* store, ObjectSetList objects)
    : store_(store), objects_(std::move(objects)) {
  num_groups_ = static_cast<int>(objects_.size()) + 1;  // + catch-all.
  group_of_entity_.assign(store_->num_entities(), num_groups_ - 1);
  for (size_t g = 0; g < objects_.size(); ++g) {
    for (EntityId e : objects_[g]) {
      if (e >= 0 && e < store_->num_entities()) {
        group_of_entity_[e] = static_cast<int>(g);
      }
    }
  }
  clocks_.assign(num_groups_, 0);
  versions_.resize(store_->num_entities());
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    VersionMeta initial;
    initial.store_index = 0;
    initial.writer = kInitialWriter;
    initial.committed = true;
    versions_[e].emplace(0, initial);
  }
}

void PwMvtoController::Register(int tx, TxProfile profile) {
  if (tx >= static_cast<int>(txs_.size())) txs_.resize(tx + 1);
  txs_[tx].profile = std::move(profile);
}

ReqResult PwMvtoController::Begin(int tx) {
  TxState& state = txs_[tx];
  for (int pred : state.profile.predecessors) {
    if (!txs_[pred].committed) {
      commit_waiters_[pred].insert(tx);
      Emit(TraceEvent::Kind::kCommitWait, tx, pred);
      return ReqResult::kBlocked;
    }
  }
  state.running = true;
  state.group_ts.clear();
  state.own_writes.clear();
  Emit(TraceEvent::Kind::kValidated, tx);
  return ReqResult::kGranted;
}

int64_t PwMvtoController::EnsureTimestamp(int tx, int group) {
  TxState& state = txs_[tx];
  auto it = state.group_ts.find(group);
  if (it != state.group_ts.end()) return it->second;
  int64_t ts = ++clocks_[group];
  state.group_ts.emplace(group, ts);
  ++stats_.timestamps_drawn;
  Emit(TraceEvent::Kind::kTsDraw, tx, group, kInvalidEntity, ts);
  return ts;
}

int64_t PwMvtoController::GroupTimestamp(int tx, int group) const {
  auto it = txs_[tx].group_ts.find(group);
  return it == txs_[tx].group_ts.end() ? -1 : it->second;
}

std::map<int64_t, PwMvtoController::VersionMeta>::iterator
PwMvtoController::VisibleVersion(EntityId e, int64_t ts) {
  auto it = versions_[e].upper_bound(ts);
  NONSERIAL_CHECK(it != versions_[e].begin());
  return std::prev(it);
}

ReqResult PwMvtoController::Read(int tx, EntityId e, Value* out) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  int64_t ts = EnsureTimestamp(tx, GroupOf(e));
  auto it = VisibleVersion(e, ts);
  VersionMeta& meta = it->second;
  if (!meta.committed && meta.writer != tx) {
    ++stats_.commit_waits;
    commit_waiters_[meta.writer].insert(tx);
    Emit(TraceEvent::Kind::kCommitWait, tx, meta.writer, e);
    return ReqResult::kBlocked;
  }
  meta.max_read_ts = std::max(meta.max_read_ts, ts);
  *out = store_->Read(VersionRef{e, meta.store_index});
  Emit(TraceEvent::Kind::kRead, tx, -1, e, *out);
  return ReqResult::kGranted;
}

ReqResult PwMvtoController::Write(int tx, EntityId e, Value value) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  int64_t ts = EnsureTimestamp(tx, GroupOf(e));
  auto it = VisibleVersion(e, ts);
  if (it->first != ts && it->second.max_read_ts > ts) {
    ++stats_.late_write_aborts;  // Late within this object's order only.
    Emit(TraceEvent::Kind::kTsAbort, tx, -1, e);
    return ReqResult::kAborted;
  }
  int index = store_->Append(e, value, tx);
  VersionMeta meta;
  meta.store_index = index;
  meta.writer = tx;
  versions_[e][ts] = meta;
  state.own_writes[e] = value;
  Emit(TraceEvent::Kind::kWrite, tx, -1, e, value);
  return ReqResult::kGranted;
}

void PwMvtoController::WriteDone(int /*tx*/, EntityId /*e*/) {}

ReqResult PwMvtoController::Commit(int tx) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.running);
  // O_t over the per-object timestamp-consistent view.
  ValueVector view(store_->num_entities());
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    auto own = state.own_writes.find(e);
    if (own != state.own_writes.end()) {
      view[e] = own->second;
      continue;
    }
    auto ts_it = state.group_ts.find(GroupOf(e));
    int64_t ts = ts_it == state.group_ts.end() ? clocks_[GroupOf(e)]
                                               : ts_it->second;
    auto it = VisibleVersion(e, ts);
    while (!it->second.committed && it != versions_[e].begin()) {
      it = std::prev(it);
    }
    view[e] = store_->Read(VersionRef{e, it->second.store_index});
  }
  if (!state.profile.output.Eval(view)) return ReqResult::kAborted;
  store_->CommitWriter(tx);
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    for (auto& [wts, meta] : versions_[e]) {
      if (meta.writer == tx) meta.committed = true;
    }
  }
  state.running = false;
  state.committed = true;
  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  Emit(TraceEvent::Kind::kCommitted, tx);
  return ReqResult::kGranted;
}

void PwMvtoController::Abort(int tx) {
  TxState& state = txs_[tx];
  store_->RollbackWriter(tx);
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    for (auto it = versions_[e].begin(); it != versions_[e].end();) {
      if (it->second.writer == tx && !it->second.committed) {
        it = versions_[e].erase(it);
      } else {
        ++it;
      }
    }
  }
  state.running = false;
  state.group_ts.clear();
  state.own_writes.clear();
  for (auto& [target, waiters] : commit_waiters_) waiters.erase(tx);
  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  Emit(TraceEvent::Kind::kAborted, tx);
}

void PwMvtoController::Wake(int tx) { wakeups_.insert(tx); }

std::vector<int> PwMvtoController::TakeWakeups() {
  std::vector<int> out(wakeups_.begin(), wakeups_.end());
  wakeups_.clear();
  return out;
}

std::vector<int> PwMvtoController::TakeForcedAborts() { return {}; }

}  // namespace nonserial
