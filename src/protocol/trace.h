#ifndef NONSERIAL_PROTOCOL_TRACE_H_
#define NONSERIAL_PROTOCOL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "predicate/value.h"

namespace nonserial {

/// One observable decision of the Correct Execution Protocol. The event
/// stream is the protocol's explanation of itself: which versions each
/// validation chose, which writes triggered Figure 4 re-evaluations, who
/// was re-assigned and who was aborted for partial-order invalidation.
struct CepEvent {
  enum class Kind : uint8_t {
    kValidated,        ///< Version assignment succeeded (Begin granted).
    kValidationWait,   ///< No satisfying assignment yet / Rv blocked.
    kRead,             ///< Granted read; `value` observed.
    kWrite,            ///< New version created; `value` written.
    kReEval,           ///< Figure 4 entered for (writer=tx, entity).
    kReAssign,         ///< `tx` re-assigned because of `other`'s write.
    kPoAbort,          ///< `tx` aborted: partial-order invalidation.
    kCascadeAbort,     ///< `tx` aborted: read a rolled-back version.
    kInjectedAbort,    ///< `tx` aborted: fault injection (chaos mode).
    kCommitWait,       ///< `tx` waiting for `other`'s commit.
    kCommitted,
    kAborted           ///< Abort processed (rollback done).
  };

  Kind kind = Kind::kValidated;
  int tx = -1;
  int other = -1;                    ///< Peer transaction, where relevant.
  EntityId entity = kInvalidEntity;  ///< Where relevant.
  Value value = 0;                   ///< Reads/writes.

  std::string ToString() const;
};

/// Observer interface; implementations must not call back into the
/// protocol. The default recorder below suffices for tests and tools.
class CepObserver {
 public:
  virtual ~CepObserver() = default;
  virtual void OnEvent(const CepEvent& event) = 0;
};

/// Records every event in order.
class CepTraceRecorder : public CepObserver {
 public:
  void OnEvent(const CepEvent& event) override { events_.push_back(event); }

  const std::vector<CepEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Events of one kind, in order.
  std::vector<CepEvent> OfKind(CepEvent::Kind kind) const;

 private:
  std::vector<CepEvent> events_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_TRACE_H_
