#ifndef NONSERIAL_PROTOCOL_TRACE_H_
#define NONSERIAL_PROTOCOL_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "predicate/value.h"

namespace nonserial {

/// One observable decision of a concurrency-control protocol. The event
/// stream is the protocol's explanation of itself: which versions each
/// validation chose, which writes triggered Figure 4 re-evaluations, who
/// blocked on which lock, which write arrived too late in timestamp order.
///
/// The event vocabulary is the union of what the shipped protocols decide;
/// each engine emits the subset that applies to it (see the taxonomy table
/// in DESIGN.md). `protocol` tags every event with the emitting engine's
/// name() so a single sink can watch heterogeneous runs (e.g. the nested
/// protocol's scope engines next to its own group events).
struct TraceEvent {
  enum class Kind : uint8_t {
    // Validation / lifecycle (all protocols).
    kValidated,        ///< Attempt admitted: CEP version assignment found;
                       ///< MVTO/PW-MVTO timestamp drawn (`value` = ts).
    kValidationWait,   ///< No satisfying assignment yet / Rv blocked.
    kRead,             ///< Granted read; `value` observed.
    kWrite,            ///< New version created; `value` written.
    // CEP's Figure 4 re-evaluation routine.
    kReEval,           ///< Figure 4 entered for (writer=tx, entity).
    kReAssign,         ///< `tx` re-assigned because of `other`'s write.
    // CEP incremental verification (eval cache + delta revalidation).
    kDeltaRevalidate,  ///< Invalidated optimistic pass re-solved as a
                       ///< delta: unchanged entities pinned to the prior
                       ///< choice, only changed entities re-searched.
    kCacheInvalidate,  ///< Eval-cache epochs bumped for `tx`'s rolled-back
                       ///< writes (Abort) or a whole store generation.
    kPoAbort,          ///< `tx` aborted: partial-order invalidation.
    kCascadeAbort,     ///< `tx` aborted: read a rolled-back version.
    kInjectedAbort,    ///< `tx` aborted: fault injection (chaos mode).
    // Termination (all protocols).
    kCommitWait,       ///< `tx` waiting for `other`'s commit.
    kCommitted,
    kAborted,          ///< Abort processed (rollback done).
    kRetired,          ///< `tx` left the live scan set; attempt state
                       ///< reclaimed (CEP transaction retirement).
    // Lock-based protocols (2PL / PW-2PL).
    kLockGrant,        ///< Lock acquired on `entity`.
    kLockBlock,        ///< Lock refused; `tx` waits on the holders.
    kDeadlockVictim,   ///< `tx` aborted: its wait would close a cycle.
    kGroupRelease,     ///< Predicate-wise early release of lock group
                       ///< `other` after the last planned op on `entity`.
    // Timestamp protocols (MVTO / PW-MVTO).
    kTsDraw,           ///< Per-object timestamp drawn lazily (PW-MVTO;
                       ///< `other` = object id, `value` = ts).
    kTsAbort,          ///< Late write: a younger reader already observed
                       ///< the predecessor version of `entity`.
    // Hierarchical scopes (Nested-CEP; `tx` is the group id).
    kGroupStart,       ///< Scope opened: top-level validation succeeded.
    kGroupCommit,      ///< Scope published and durably committed.
    kGroupReset,       ///< Scope torn down; members redo.
    // Durable-log lifecycle (write-ahead log; `tx` = chaos cycle index).
    kCheckpoint,          ///< Checkpoint installed; `value` = txs captured.
    kCompaction,          ///< Segments reclaimed; `value` = segment count.
    kCorruptionDetected,  ///< Recovery found mid-log corruption / lost
                          ///< segment; `value` = records salvaged.
    kWalBatchFlush        ///< Group-commit batch flushed; `value` = frames
                          ///< in the batch, `other` = commit acks resolved,
                          ///< `tx` = 1 if the batch flushed clean, 0 if a
                          ///< media fault failed its acks.
  };

  Kind kind = Kind::kValidated;
  int tx = -1;
  int other = -1;                    ///< Peer tx / lock group / object id.
  EntityId entity = kInvalidEntity;  ///< Where relevant.
  Value value = 0;                   ///< Reads/writes/timestamps.
  std::string protocol;              ///< name() of the emitting engine.

  /// Stable lowercase identifier of a kind ("re-assign", "lock-block", …) —
  /// the spelling used by run reports; treat as API.
  static const char* KindName(Kind kind);

  std::string ToString() const;
};

/// Sink interface; implementations must not call back into the protocol.
///
/// Locking contract: an engine emits while holding its own internal lock
/// (if it has one), so OnEvent must not re-enter the emitting controller.
/// When a sink is attached to an engine driven by concurrent client
/// threads — or to several engines at once — OnEvent may be invoked from
/// many threads and must synchronize itself. The recorder below does; a
/// bespoke sink that only ever observes the single-threaded simulator may
/// skip the lock, but documents that it did.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Records every event in order. Thread-safe: recording from concurrently
/// driven engines (e.g. the parallel driver) needs no external discipline.
/// The zero-copy accessors (`events()`) are for quiesced use — after the
/// driving threads have joined; use snapshot()/size()/Tally() while
/// recording is still in flight.
class TraceRecorder : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  /// Quiesced access (no concurrent OnEvent): the full stream, in order.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Copy of the stream so far (safe while recording).
  std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// Events of one kind, in order (safe while recording).
  std::vector<TraceEvent> OfKind(TraceEvent::Kind kind) const;

  /// Event tallies grouped by protocol tag then kind name — the shape the
  /// run-report layer serializes (see common/report.h).
  std::map<std::string, std::map<std::string, int64_t>> Tally() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Compatibility aliases: the trace API began CEP-only; existing code and
/// tests keep compiling against the historical names.
using CepEvent = TraceEvent;
using CepObserver = TraceSink;
using CepTraceRecorder = TraceRecorder;

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_TRACE_H_
