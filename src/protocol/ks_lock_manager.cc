#include "protocol/ks_lock_manager.h"

#include "common/logging.h"

namespace nonserial {

KsLockManager::KsLockManager(int num_entities)
    : rv_holders_(num_entities),
      r_holders_(num_entities),
      w_holders_(num_entities) {}

KsLockOutcome KsLockManager::Acquire(int tx, EntityId e, KsLockMode mode) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  switch (mode) {
    case KsLockMode::kRv:
    case KsLockMode::kR: {
      if (HasActiveWriter(e, /*other_than=*/tx)) return KsLockOutcome::kBlocked;
      if (mode == KsLockMode::kRv) {
        rv_holders_[e].insert(tx);
      } else {
        r_holders_[e].insert(tx);
      }
      return KsLockOutcome::kGranted;
    }
    case KsLockMode::kW: {
      bool readers_present = false;
      for (int holder : rv_holders_[e]) {
        if (holder != tx) readers_present = true;
      }
      for (int holder : r_holders_[e]) {
        if (holder != tx) readers_present = true;
      }
      w_holders_[e].insert(tx);
      return readers_present ? KsLockOutcome::kReEval
                             : KsLockOutcome::kGranted;
    }
  }
  return KsLockOutcome::kBlocked;
}

KsLockOutcome KsLockManager::UpgradeToRead(int tx, EntityId e) {
  NONSERIAL_CHECK(HoldsRv(tx, e))
      << "read request without a validation lock (tx " << tx << ", entity "
      << e << ")";
  if (HasActiveWriter(e, /*other_than=*/tx)) return KsLockOutcome::kBlocked;
  r_holders_[e].insert(tx);
  return KsLockOutcome::kGranted;
}

void KsLockManager::ReleaseWrite(int tx, EntityId e) {
  auto it = w_holders_[e].find(tx);
  NONSERIAL_CHECK(it != w_holders_[e].end());
  w_holders_[e].erase(it);
}

void KsLockManager::ReleaseAll(int tx) {
  for (EntityId e = 0; e < num_entities(); ++e) {
    rv_holders_[e].erase(tx);
    r_holders_[e].erase(tx);
    auto range = w_holders_[e].equal_range(tx);
    w_holders_[e].erase(range.first, range.second);
  }
}

bool KsLockManager::HoldsRv(int tx, EntityId e) const {
  return rv_holders_[e].contains(tx);
}

bool KsLockManager::HoldsR(int tx, EntityId e) const {
  return r_holders_[e].contains(tx);
}

bool KsLockManager::HasActiveWriter(EntityId e, int other_than) const {
  for (int holder : w_holders_[e]) {
    if (holder != other_than) return true;
  }
  return false;
}

std::vector<int> KsLockManager::Readers(EntityId e) const {
  std::set<int> readers = rv_holders_[e];
  readers.insert(r_holders_[e].begin(), r_holders_[e].end());
  return std::vector<int>(readers.begin(), readers.end());
}

}  // namespace nonserial
