#include "protocol/ks_lock_manager.h"

#include "common/failpoint.h"
#include "common/logging.h"

namespace nonserial {

KsLockManager::KsLockManager(int num_entities, ProtocolMetrics* metrics)
    : entities_(num_entities),
      shards_(new Shard[kNumShards]),
      metrics_(metrics) {}

bool KsLockManager::HasActiveWriterLocked(EntityId e, int other_than) const {
  for (int holder : entities_[e].w) {
    if (holder != other_than) return true;
  }
  return false;
}

KsLockOutcome KsLockManager::Acquire(int tx, EntityId e, KsLockMode mode) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::lock_guard<std::mutex> lock(ShardOf(e));
  EntityLocks& locks = entities_[e];
  switch (mode) {
    case KsLockMode::kRv:
    case KsLockMode::kR: {
      // Failpoint: spurious lock-acquire refusal. Only read-side modes may
      // fire — the Figure 3 matrix has no blocking outcome for W, and the
      // engine's Write path has no blocked branch to take. The caller
      // registers as a waiter with no writer to wake it, so this also
      // exercises the drivers' lost-wakeup poll guard.
      if (NONSERIAL_FAILPOINT("ks.lock_acquire")) {
        if (metrics_ != nullptr) metrics_->lock_blocks.Add();
        return KsLockOutcome::kBlocked;
      }
      if (HasActiveWriterLocked(e, /*other_than=*/tx)) {
        if (metrics_ != nullptr) metrics_->lock_blocks.Add();
        return KsLockOutcome::kBlocked;
      }
      if (mode == KsLockMode::kRv) {
        locks.rv.insert(tx);
      } else {
        locks.r.insert(tx);
      }
      if (metrics_ != nullptr) metrics_->lock_grants.Add();
      return KsLockOutcome::kGranted;
    }
    case KsLockMode::kW: {
      bool readers_present = false;
      for (int holder : locks.rv) {
        if (holder != tx) readers_present = true;
      }
      for (int holder : locks.r) {
        if (holder != tx) readers_present = true;
      }
      locks.w.insert(tx);
      if (metrics_ != nullptr) {
        (readers_present ? metrics_->lock_reevals : metrics_->lock_grants)
            .Add();
      }
      return readers_present ? KsLockOutcome::kReEval
                             : KsLockOutcome::kGranted;
    }
  }
  return KsLockOutcome::kBlocked;
}

KsLockOutcome KsLockManager::UpgradeToRead(int tx, EntityId e) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::lock_guard<std::mutex> lock(ShardOf(e));
  EntityLocks& locks = entities_[e];
  NONSERIAL_CHECK(locks.rv.contains(tx))
      << "read request without a validation lock (tx " << tx << ", entity "
      << e << ")";
  if (HasActiveWriterLocked(e, /*other_than=*/tx)) {
    if (metrics_ != nullptr) metrics_->lock_blocks.Add();
    return KsLockOutcome::kBlocked;
  }
  locks.r.insert(tx);
  if (metrics_ != nullptr) metrics_->lock_grants.Add();
  return KsLockOutcome::kGranted;
}

void KsLockManager::ReleaseWrite(int tx, EntityId e) {
  NONSERIAL_CHECK_GE(e, 0);
  NONSERIAL_CHECK_LT(e, num_entities());
  std::lock_guard<std::mutex> lock(ShardOf(e));
  std::multiset<int>& w = entities_[e].w;
  auto it = w.find(tx);
  NONSERIAL_CHECK(it != w.end());
  w.erase(it);  // Exactly one hold: tx may have other writes in flight.
}

void KsLockManager::ReleaseAll(int tx) {
  for (EntityId e = 0; e < num_entities(); ++e) {
    std::lock_guard<std::mutex> lock(ShardOf(e));
    EntityLocks& locks = entities_[e];
    locks.rv.erase(tx);
    locks.r.erase(tx);
    auto range = locks.w.equal_range(tx);
    locks.w.erase(range.first, range.second);
  }
}

bool KsLockManager::HoldsRv(int tx, EntityId e) const {
  std::lock_guard<std::mutex> lock(ShardOf(e));
  return entities_[e].rv.contains(tx);
}

bool KsLockManager::HoldsR(int tx, EntityId e) const {
  std::lock_guard<std::mutex> lock(ShardOf(e));
  return entities_[e].r.contains(tx);
}

bool KsLockManager::HasActiveWriter(EntityId e, int other_than) const {
  std::lock_guard<std::mutex> lock(ShardOf(e));
  return HasActiveWriterLocked(e, other_than);
}

int KsLockManager::WriteHolds(int tx, EntityId e) const {
  std::lock_guard<std::mutex> lock(ShardOf(e));
  return static_cast<int>(entities_[e].w.count(tx));
}

std::vector<int> KsLockManager::Readers(EntityId e) const {
  std::lock_guard<std::mutex> lock(ShardOf(e));
  std::set<int> readers = entities_[e].rv;
  readers.insert(entities_[e].r.begin(), entities_[e].r.end());
  return std::vector<int>(readers.begin(), readers.end());
}

}  // namespace nonserial
