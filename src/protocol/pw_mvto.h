#ifndef NONSERIAL_PROTOCOL_PW_MVTO_H_
#define NONSERIAL_PROTOCOL_PW_MVTO_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "predicate/predicate.h"
#include "protocol/controller.h"
#include "storage/version_store.h"

namespace nonserial {

/// Predicate-wise multiversion timestamp ordering — the "virtual
/// timestamps" protocol the paper's conclusion announces for future work,
/// realized per its predicate-wise recipe: timestamp ordering is enforced
/// *per conjunct object* of the database consistency constraint, with an
/// independent logical clock per object. A transaction draws its timestamp
/// in an object lazily, on first access, so transactions that touch an
/// object in disjoint phases serialize per-object rather than globally —
/// the timestamp analogue of predicate-wise 2PL, targeting the PWSR class.
///
/// Late writes abort only when they violate *their own object's* order;
/// cross-object orders may disagree, which is exactly the extra freedom of
/// the predicate-wise classes.
class PwMvtoController : public ConcurrencyController {
 public:
  struct Stats {
    int64_t late_write_aborts = 0;
    int64_t commit_waits = 0;
    int64_t timestamps_drawn = 0;  ///< Sum over (tx attempt, object) pairs.
  };

  PwMvtoController(VersionStore* store, ObjectSetList objects);

  std::string name() const override { return "PW-MVTO"; }
  void Register(int tx, TxProfile profile) override;
  ReqResult Begin(int tx) override;
  ReqResult Read(int tx, EntityId e, Value* out) override;
  ReqResult Write(int tx, EntityId e, Value value) override;
  void WriteDone(int tx, EntityId e) override;
  ReqResult Commit(int tx) override;
  void Abort(int tx) override;
  std::vector<int> TakeWakeups() override;
  std::vector<int> TakeForcedAborts() override;

  const Stats& stats() const { return stats_; }

  /// The lazily drawn per-object timestamp (testing hook); -1 when the
  /// transaction has not touched the object.
  int64_t GroupTimestamp(int tx, int group) const;

 private:
  struct VersionMeta {
    int store_index = -1;
    int writer = kInitialWriter;
    int64_t max_read_ts = 0;
    bool committed = false;
  };

  struct TxState {
    TxProfile profile;
    bool running = false;
    bool committed = false;
    std::map<int, int64_t> group_ts;  ///< Object id -> timestamp.
    std::map<EntityId, Value> own_writes;
  };

  int GroupOf(EntityId e) const { return group_of_entity_[e]; }
  int64_t EnsureTimestamp(int tx, int group);
  std::map<int64_t, VersionMeta>::iterator VisibleVersion(EntityId e,
                                                          int64_t ts);
  void Wake(int tx);

  VersionStore* store_;
  ObjectSetList objects_;
  int num_groups_;
  std::vector<int> group_of_entity_;
  std::vector<TxState> txs_;
  std::vector<std::map<int64_t, VersionMeta>> versions_;  ///< Per entity.
  std::vector<int64_t> clocks_;                           ///< Per group.
  std::map<int, std::set<int>> commit_waiters_;
  std::set<int> wakeups_;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_PW_MVTO_H_
