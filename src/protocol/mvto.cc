#include "protocol/mvto.h"

#include "common/logging.h"

namespace nonserial {

MvtoController::MvtoController(VersionStore* store) : store_(store) {
  versions_.resize(store_->num_entities());
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    VersionMeta initial;
    initial.store_index = 0;
    initial.writer = kInitialWriter;
    initial.committed = true;
    versions_[e].emplace(0, initial);
  }
}

void MvtoController::Register(int tx, TxProfile profile) {
  if (tx >= static_cast<int>(txs_.size())) txs_.resize(tx + 1);
  txs_[tx].profile = std::move(profile);
}

ReqResult MvtoController::Begin(int tx) {
  TxState& state = txs_[tx];
  for (int pred : state.profile.predecessors) {
    if (!txs_[pred].committed) {
      commit_waiters_[pred].insert(tx);
      Emit(TraceEvent::Kind::kCommitWait, tx, pred);
      return ReqResult::kBlocked;
    }
  }
  state.ts = ++clock_;
  state.own_writes.clear();
  state.reads.clear();
  Emit(TraceEvent::Kind::kValidated, tx, -1, kInvalidEntity, state.ts);
  return ReqResult::kGranted;
}

std::map<int64_t, MvtoController::VersionMeta>::iterator
MvtoController::VisibleVersion(EntityId e, int64_t ts) {
  auto it = versions_[e].upper_bound(ts);
  NONSERIAL_CHECK(it != versions_[e].begin());
  return std::prev(it);
}

ReqResult MvtoController::Read(int tx, EntityId e, Value* out) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK_GE(state.ts, 0);
  auto it = VisibleVersion(e, state.ts);
  VersionMeta& meta = it->second;
  if (!meta.committed && meta.writer != tx) {
    // Wait for the writer to resolve rather than reading dirty data.
    ++stats_.commit_waits;
    commit_waiters_[meta.writer].insert(tx);
    Emit(TraceEvent::Kind::kCommitWait, tx, meta.writer, e);
    return ReqResult::kBlocked;
  }
  meta.max_read_ts = std::max(meta.max_read_ts, state.ts);
  *out = store_->Read(VersionRef{e, meta.store_index});
  state.reads[e] = *out;
  Emit(TraceEvent::Kind::kRead, tx, -1, e, *out);
  return ReqResult::kGranted;
}

ReqResult MvtoController::Write(int tx, EntityId e, Value value) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK_GE(state.ts, 0);
  auto it = VisibleVersion(e, state.ts);
  if (it->first != state.ts && it->second.max_read_ts > state.ts) {
    // A younger reader already observed the predecessor version: this write
    // arrives too late in timestamp order.
    ++stats_.late_write_aborts;
    Emit(TraceEvent::Kind::kTsAbort, tx, -1, e);
    return ReqResult::kAborted;
  }
  int index = store_->Append(e, value, tx);
  VersionMeta meta;
  meta.store_index = index;
  meta.writer = tx;
  versions_[e][state.ts] = meta;  // A rewrite by the same tx supersedes.
  state.own_writes[e] = value;
  Emit(TraceEvent::Kind::kWrite, tx, -1, e, value);
  return ReqResult::kGranted;
}

void MvtoController::WriteDone(int /*tx*/, EntityId /*e*/) {}

ReqResult MvtoController::Commit(int tx) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK_GE(state.ts, 0);
  // Evaluate O_t over the transaction's timestamp-consistent view.
  ValueVector view(store_->num_entities());
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    auto own = state.own_writes.find(e);
    if (own != state.own_writes.end()) {
      view[e] = own->second;
      continue;
    }
    // Latest committed version visible at our timestamp.
    auto it = VisibleVersion(e, state.ts);
    while (!it->second.committed && it != versions_[e].begin()) {
      it = std::prev(it);
    }
    view[e] = store_->Read(VersionRef{e, it->second.store_index});
  }
  if (!state.profile.output.Eval(view)) return ReqResult::kAborted;
  store_->CommitWriter(tx);
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    for (auto& [wts, meta] : versions_[e]) {
      if (meta.writer == tx) meta.committed = true;
    }
  }
  state.committed = true;
  state.ts = -1;
  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  Emit(TraceEvent::Kind::kCommitted, tx);
  return ReqResult::kGranted;
}

void MvtoController::Abort(int tx) {
  TxState& state = txs_[tx];
  store_->RollbackWriter(tx);
  for (EntityId e = 0; e < store_->num_entities(); ++e) {
    for (auto it = versions_[e].begin(); it != versions_[e].end();) {
      if (it->second.writer == tx && !it->second.committed) {
        it = versions_[e].erase(it);
      } else {
        ++it;
      }
    }
  }
  state.ts = -1;
  state.own_writes.clear();
  state.reads.clear();
  for (auto& [target, waiters] : commit_waiters_) waiters.erase(tx);
  // Readers waiting on this writer may now proceed to an older version.
  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  Emit(TraceEvent::Kind::kAborted, tx);
}

void MvtoController::Wake(int tx) { wakeups_.insert(tx); }

std::vector<int> MvtoController::TakeWakeups() {
  std::vector<int> out(wakeups_.begin(), wakeups_.end());
  wakeups_.clear();
  return out;
}

std::vector<int> MvtoController::TakeForcedAborts() { return {}; }

}  // namespace nonserial
