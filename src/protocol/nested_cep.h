#ifndef NONSERIAL_PROTOCOL_NESTED_CEP_H_
#define NONSERIAL_PROTOCOL_NESTED_CEP_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "protocol/cep.h"
#include "protocol/controller.h"
#include "storage/version_store.h"

namespace nonserial {

/// A top-level transaction of the hierarchical protocol: a named scope with
/// its own specification (I_G, O_G) and position in the top-level partial
/// order. Its children are the flat simulator transactions mapped to it.
struct NestedGroup {
  std::string name;
  Predicate input;   ///< I_G over global entities.
  Predicate output;  ///< O_G over global entities.
  std::vector<int> predecessors;  ///< Group ids preceding this group.
};

/// Two-level hierarchical Correct Execution Protocol — the paper's nested
/// transaction management (Section 5.1: "A non-leaf transaction is
/// validated in exactly the same way as a database access transaction …
/// a version is released when the final subtransaction terminates", and the
/// note that a subtransaction's commit "is only relative to the parent").
///
/// Structure: one CorrectExecutionProtocol instance per *scope*.
///  - The top scope's transactions are the groups themselves. Starting a
///    group runs the top-level validation (Rv locks + version assignment
///    over I_G) and *reads* the assigned versions — so a predecessor
///    group's later write triggers the standard Figure 4 partial-order
///    invalidation at the group granularity.
///  - Each group runs a private CEP among its members over a scope-local
///    version store seeded with the group's assigned input state X(G).
///    Members see each other's versions immediately, but nothing of other
///    groups' uncommitted work.
///  - A member's commit is relative to the group: it becomes durable only
///    when the whole group commits. When the last member finishes, the
///    group's net effect is published to the parent store as the group's
///    writes and the top-level commit rules (group predecessors, assigned
///    authors, O_G) are applied. Until then members block in commit.
///  - A group-level abort (partial-order invalidation or cascade at the
///    top) resets the scope: every member is force-aborted and restarts;
///    the published state is rolled back — commits were only relative.
class NestedCepController : public ConcurrencyController {
 public:
  struct Options {
    std::vector<NestedGroup> groups;
    /// Flat transaction id -> group id. Every registered transaction must
    /// be mapped.
    std::vector<int> group_of_tx;
  };

  struct Stats {
    int64_t group_starts = 0;
    int64_t group_commits = 0;
    int64_t group_resets = 0;   ///< Group-level aborts (all members redone).
  };

  NestedCepController(VersionStore* top_store, Options options);

  std::string name() const override { return "Nested-CEP"; }
  void Register(int tx, TxProfile profile) override;
  ReqResult Begin(int tx) override;
  ReqResult Read(int tx, EntityId e, Value* out) override;
  ReqResult Write(int tx, EntityId e, Value value) override;
  void WriteDone(int tx, EntityId e) override;
  ReqResult Commit(int tx) override;
  void Abort(int tx) override;
  std::vector<int> TakeWakeups() override;
  std::vector<int> TakeForcedAborts() override;

  /// Propagates the sink into the top scope engine and every scope engine,
  /// including scopes opened later. Scope engines tag their events "CEP";
  /// this controller's own group-lifecycle events (kGroupStart /
  /// kGroupCommit / kGroupReset, with tx = group id) carry "Nested-CEP".
  void SetObserver(TraceSink* sink) override;

  const Stats& stats() const { return stats_; }

  /// Testing hooks.
  const CorrectExecutionProtocol& top_cep() const { return top_cep_; }
  bool GroupActive(int g) const;
  bool GroupCommitted(int g) const;

 private:
  enum class GroupPhase { kIdle, kActive, kCommitted };

  struct GroupState {
    GroupPhase phase = GroupPhase::kIdle;
    std::unique_ptr<VersionStore> store;  ///< Scope-local versions.
    std::unique_ptr<CorrectExecutionProtocol> cep;
    std::set<int> members;
    std::set<int> group_committed;  ///< Members committed relative to group.
    std::set<int> begin_waiters;    ///< Members blocked on the group start.
    ValueVector seed;               ///< X(G) the scope was seeded with.
    bool published = false;
  };

  int GroupOf(int tx) const;
  ReqResult EnsureGroupStarted(int g, int tx);
  ReqResult TryGroupCommit(int g);
  void ResetGroup(int g);
  void DrainChildren();

  VersionStore* top_store_;
  Options options_;
  CorrectExecutionProtocol top_cep_;
  std::vector<GroupState> groups_;
  std::vector<TxProfile> profiles_;
  std::set<int> wakeups_;
  std::set<int> forced_aborts_;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_NESTED_CEP_H_
