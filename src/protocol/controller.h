#ifndef NONSERIAL_PROTOCOL_CONTROLLER_H_
#define NONSERIAL_PROTOCOL_CONTROLLER_H_

#include <string>
#include <vector>

#include "engine/api.h"
#include "predicate/predicate.h"
#include "predicate/value.h"
#include "protocol/trace.h"

namespace nonserial {

/// The transaction description and per-request result types were promoted
/// into the engine facade (engine/api.h) so the session API, the server,
/// and the controllers share one definition; these aliases keep the
/// controller layer's historical names compiling unchanged.
using TxProfile = engine::TxSpec;
using ReqResult = engine::RequestOutcome;

/// A pluggable concurrency-control protocol driven by the discrete-event
/// simulator. Implementations: the paper's Correct Execution Protocol,
/// strict two-phase locking, multiversion timestamp ordering, and
/// predicate-wise two-phase locking.
///
/// Contract: requests are issued by one logical thread (the simulator); a
/// kBlocked result parks the transaction until its id is surfaced by
/// TakeWakeups(), after which the *same* request is retried. Controllers
/// may unilaterally kill transactions (re-evaluation, deadlock victims,
/// cascades) by surfacing their ids in TakeForcedAborts().
class ConcurrencyController {
 public:
  virtual ~ConcurrencyController() = default;

  virtual std::string name() const = 0;

  /// Registers transaction `tx` (dense runtime id). Called once, before the
  /// first Begin.
  virtual void Register(int tx, TxProfile profile) = 0;

  /// Starts (or, after an abort, restarts) an attempt. For the Correct
  /// Execution Protocol this is the definition + validation phase.
  virtual ReqResult Begin(int tx) = 0;

  /// Reads an entity; on kGranted, *out holds the value observed.
  virtual ReqResult Read(int tx, EntityId e, Value* out) = 0;

  /// Writes an entity. Granted writes hold their write lock until the
  /// simulator calls WriteDone (models the write duration).
  virtual ReqResult Write(int tx, EntityId e, Value value) = 0;

  /// Signals completion of a granted write (releases short write locks).
  virtual void WriteDone(int tx, EntityId e) = 0;

  /// Attempts to commit. kBlocked means "not yet" (e.g. predecessors still
  /// running); kAborted means the attempt is doomed (failed postcondition).
  virtual ReqResult Commit(int tx) = 0;

  /// Cleans up an aborted attempt (rollback, lock release). The transaction
  /// may be registered and begun again afterwards.
  virtual void Abort(int tx) = 0;

  /// Drains transaction ids that became runnable since the last drain.
  virtual std::vector<int> TakeWakeups() = 0;

  /// Drains transaction ids the controller requires the simulator to abort.
  virtual std::vector<int> TakeForcedAborts() = 0;

  /// Retires a terminated transaction: the controller may drop `tx` from
  /// its live scans and reclaim its per-transaction state. Only legal once
  /// `tx` is committed or idle-after-abort AND no live transaction still
  /// depends on it. Returns true if the transaction was retired (or already
  /// was); false if it is not yet eligible (the caller may retry later) or
  /// the controller does not support retirement (the default).
  virtual bool Retire(int tx) {
    (void)tx;
    return false;
  }

  /// True iff `tx` was retired. Retired ids must not be named as
  /// predecessors of new registrations.
  virtual bool IsRetired(int tx) const {
    (void)tx;
    return false;
  }

  /// Attaches a trace sink receiving every protocol decision (see trace.h
  /// for the event taxonomy and the locking contract). Not owned; must
  /// outlive the controller or be detached with nullptr. Attach before
  /// driving threads start. Virtual so composite controllers (Nested-CEP)
  /// can propagate the sink into their inner scope engines.
  virtual void SetObserver(TraceSink* sink) { sink_ = sink; }

  TraceSink* observer() const { return sink_; }

 protected:
  /// Emits through the attached sink (no-op when detached), stamping the
  /// event with this controller's protocol tag. Engines with an internal
  /// lock call this while holding it; the sink must not call back in.
  void Emit(TraceEvent::Kind kind, int tx, int other = -1,
            EntityId entity = kInvalidEntity, Value value = 0) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.kind = kind;
    event.tx = tx;
    event.other = other;
    event.entity = entity;
    event.value = value;
    event.protocol = name();
    sink_->OnEvent(event);
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_CONTROLLER_H_
