#include "protocol/cep.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"
#include "storage/wal.h"

namespace nonserial {

CorrectExecutionProtocol::CorrectExecutionProtocol(VersionStore* store)
    : CorrectExecutionProtocol(store, Options()) {}

CorrectExecutionProtocol::CorrectExecutionProtocol(VersionStore* store,
                                                   Options options)
    : store_(store),
      options_(options),
      locks_(store->num_entities(), options.metrics) {
  initial_snapshot_.resize(store->num_entities());
  for (EntityId e = 0; e < store->num_entities(); ++e) {
    initial_snapshot_[e] = store->VersionAt(e, 0).value;
  }
}

void CorrectExecutionProtocol::Register(int tx, TxProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tx >= static_cast<int>(txs_.size())) {
    txs_.resize(tx + 1);
    records_.resize(tx + 1);
    retired_.resize(tx + 1, 0);
  }
  NONSERIAL_CHECK(!retired_[tx])
      << "Register on retired transaction " << tx;
  live_.insert(tx);
  precedence_.EnsureNodes(tx + 1);
  for (int pred : profile.predecessors) {
    // A retired predecessor would break the retirement invariant (no live
    // successor of a retired transaction) and with it the completeness of
    // the live-set scans; the session layer rejects such registrations
    // before they reach the protocol.
    NONSERIAL_CHECK(pred >= static_cast<int>(retired_.size()) ||
                    !retired_[pred])
        << "transaction " << tx << " names retired predecessor " << pred;
    precedence_.AddEdge(pred, tx);
  }
  TxState& state = txs_[tx];
  state.profile = std::move(profile);
  state.input_entities = state.profile.input.Entities();
  if (options_.eval_cache != nullptr) {
    state.cached_input = std::make_shared<const CachedPredicate>(
        state.profile.input, options_.eval_cache);
    state.cached_output = std::make_shared<const CachedPredicate>(
        state.profile.output, options_.eval_cache);
  }
  records_[tx].name = state.profile.name;
}

bool CorrectExecutionProtocol::Reaches(int from, int to) const {
  if (from == to) return false;
  return precedence_.Reaches(from, to);
}

std::vector<VersionRef> CorrectExecutionProtocol::AllowableVersions(
    int tx, EntityId e) const {
  // The set D of Section 5.1: a sibling t_j contributes its latest version
  // of e unless (1) it is a successor of tx, (2) it has not written e, or
  // (3) another writer of e lies between t_j and tx in P+.
  //
  // The scan covers the *live* (unretired) set only. Retirement eligibility
  // guarantees a retired transaction has no live successor, so: no retired
  // writer can shadow a live one (rule 3 needs Reaches(k, tx) with tx
  // live), and no retired writer can dominate as a predecessor
  // (Reaches(s, tx) likewise). Retired committed writers' versions are
  // summarized by the baseline candidate pushed below.
  std::vector<int> writers;
  for (int s : live_) {
    if (s == tx) continue;
    if (Reaches(tx, s)) continue;  // Rule 1: successor.
    if (!store_->LatestIndexBy(e, s).has_value()) continue;  // Rule 2.
    writers.push_back(s);
  }
  std::vector<int> surviving;
  for (int s : writers) {
    bool shadowed = false;
    for (int k : writers) {
      if (k != s && Reaches(s, k) && Reaches(k, tx)) {  // Rule 3.
        shadowed = true;
        break;
      }
    }
    if (!shadowed) surviving.push_back(s);
  }
  // Predecessor domination: if any surviving writer precedes tx in P+, the
  // transaction may only read predecessor versions.
  std::vector<int> preds;
  for (int s : surviving) {
    if (Reaches(s, tx)) preds.push_back(s);
  }
  // Candidate order biases the assignment search: committed versions first
  // (reading them never delays commit or risks a cascade), then the
  // parent's version, then optimistic uncommitted versions.
  std::vector<VersionRef> out;
  const std::vector<int>& chosen = preds.empty() ? surviving : preds;
  for (int s : chosen) {
    if (txs_[s].phase == Phase::kCommitted) {
      out.push_back(VersionRef{e, *store_->LatestIndexBy(e, s)});
    }
  }
  if (preds.empty()) {
    if (options_.retirement) {
      // Baseline candidate standing in for retired committed writers: the
      // store's latest committed version of e. Always in D for a root-scope
      // reader — its author cannot be a successor of tx (commit rule 1
      // would then have required tx committed), and shadowing it would need
      // a surviving predecessor writer, contradicting preds.empty().
      int latest = store_->LatestCommittedIndex(e);
      if (latest != 0) {
        bool already = false;
        for (const VersionRef& ref : out) {
          if (ref.index == latest) {
            already = true;
            break;
          }
        }
        if (!already) out.push_back(VersionRef{e, latest});
      }
    }
    // The version assigned to the parent: at the root scope, the initial
    // database (version 0).
    out.push_back(VersionRef{e, 0});
  }
  for (int s : chosen) {
    if (txs_[s].phase != Phase::kCommitted) {
      out.push_back(VersionRef{e, *store_->LatestIndexBy(e, s)});
    }
  }
  return out;
}

CorrectExecutionProtocol::CandidateSnapshot
CorrectExecutionProtocol::GatherCandidates(
    int tx, const std::map<EntityId, VersionRef>& pinned) const {
  const TxState& state = txs_[tx];
  int n = store_->num_entities();
  CandidateSnapshot snapshot;
  snapshot.refs.resize(n);
  for (EntityId e = 0; e < n; ++e) {
    auto pin = pinned.find(e);
    if (pin != pinned.end()) {
      snapshot.refs[e] = {pin->second};
    } else if (state.input_entities.contains(e)) {
      snapshot.refs[e] = AllowableVersions(tx, e);
    } else {
      snapshot.refs[e] = {VersionRef{e, 0}};
    }
    for (const VersionRef& ref : snapshot.refs[e]) {
      snapshot.values.Push(store_->Read(ref));
    }
    snapshot.values.FinishEntity();
  }
  for (EntityId e : state.input_entities) {
    snapshot.stamps[e] = store_->ChainSize(e);
  }
  return snapshot;
}

bool CorrectExecutionProtocol::SnapshotStillValid(
    const CandidateSnapshot& snapshot, const std::vector<int>& choice) const {
  for (const auto& [e, size] : snapshot.stamps) {
    if (store_->ChainSize(e) != size) return false;
    const VersionRef& ref = snapshot.refs[e][choice[e]];
    if (store_->At(ref).dead) return false;
  }
  return true;
}

void CorrectExecutionProtocol::InstallAssignment(
    int tx, const CandidateSnapshot& snapshot, const std::vector<int>& choice) {
  TxState& state = txs_[tx];
  state.assigned.clear();
  for (EntityId e : state.input_entities) {
    state.assigned[e] = snapshot.refs[e][choice[e]];
  }
  state.input_view = initial_snapshot_;
  for (const auto& [e, ref] : state.assigned) {
    state.input_view[e] = store_->Read(ref);
  }
  state.local_view = state.input_view;
  for (const auto& [e, idx] : state.own_latest) {
    state.local_view[e] = store_->VersionAt(e, idx).value;
  }
}

bool CorrectExecutionProtocol::SolveAssignment(
    int tx, const std::map<EntityId, VersionRef>& pinned) {
  CandidateSnapshot snapshot = GatherCandidates(tx, pinned);
  std::optional<std::vector<int>> choice = FindSatisfyingAssignment(
      txs_[tx].profile.input, snapshot.values, options_.search_mode,
      &stats_.search, txs_[tx].cached_input.get());
  if (!choice.has_value()) return false;
  InstallAssignment(tx, snapshot, *choice);
  return true;
}

ReqResult CorrectExecutionProtocol::Begin(int tx) {
  std::unique_lock<std::mutex> lock(mu_);
  NONSERIAL_CHECK(txs_[tx].phase == Phase::kIdle ||
                  txs_[tx].phase == Phase::kValidating)
      << "Begin on transaction in phase "
      << static_cast<int>(txs_[tx].phase);
  txs_[tx].phase = Phase::kValidating;
  // Failpoint: the definition/validation boundary. Firing simulates a
  // transient validation-phase failure; the attempt aborts and retries.
  if (NONSERIAL_FAILPOINT("cep.pre_validate")) return ReqResult::kAborted;
  // Validation, part 0: Rv locks protect the version assignment.
  for (EntityId e : txs_[tx].input_entities) {
    if (locks_.HoldsRv(tx, e)) continue;
    if (locks_.Acquire(tx, e, KsLockMode::kRv) == KsLockOutcome::kBlocked) {
      read_waiters_[e].insert(tx);
      Emit(CepEvent::Kind::kValidationWait, tx, -1, e);
      return ReqResult::kBlocked;
    }
  }
  // Validation, parts 1 + 2: allowable-version sets, then the (NP-complete
  // in general) satisfying-assignment search. The search runs outside the
  // engine lock — candidates and chain stamps are snapshotted under the
  // lock, and the assignment only installs if the stamps still hold. The
  // Rv locks held across the window turn any concurrent write into a
  // Figure 4 re-evaluation, so nothing is admitted that the fully locked
  // protocol would reject; a failed revalidation rescans, but only
  // max_validation_rescans times — a hot-entity write storm can otherwise
  // invalidate every pass and starve the reader forever.
  int rescans = 0;
  // The previously invalidated pass, if any: its snapshot and the choice it
  // found. A rescan whose candidate lists mostly match that snapshot can be
  // solved as a *delta* — unchanged entities pinned to the prior choice,
  // only changed entities re-searched (see DeltaRevalidate).
  bool have_prev = false;
  CandidateSnapshot prev_snapshot;
  std::vector<int> prev_choice;
  for (;;) {
    CandidateSnapshot snapshot = GatherCandidates(tx, {});
    // The profile is immutable while an attempt is in flight (Register
    // precedes driving; Abort runs on this transaction's own thread).
    const Predicate& input = txs_[tx].profile.input;
    const CachedPredicate* cached = txs_[tx].cached_input.get();
    bool delta = options_.delta_revalidate && have_prev;
    std::set<EntityId> changed;
    if (delta) {
      // Only the input entities can change between passes: every other
      // entity's candidate list is the pinned initial version.
      for (EntityId e : txs_[tx].input_entities) {
        if (snapshot.refs[e] != prev_snapshot.refs[e] ||
            snapshot.values.view(e) != prev_snapshot.values.view(e)) {
          changed.insert(e);
        }
      }
    }
    lock.unlock();
    if (options_.validation_interference) options_.validation_interference(tx);
    SearchStats search;
    DeltaStats delta_search;
    std::optional<std::vector<int>> choice =
        delta ? DeltaRevalidate(input, snapshot.values, prev_choice, changed,
                                options_.search_mode, &search, cached,
                                &delta_search)
              : FindSatisfyingAssignment(input, snapshot.values,
                                         options_.search_mode, &search,
                                         cached);
    lock.lock();
    stats_.search.nodes_visited += search.nodes_visited;
    stats_.search.evaluations += search.evaluations;
    if (options_.metrics != nullptr) {
      options_.metrics->search_nodes.Record(search.nodes_visited);
    }
    if (delta) {
      stats_.delta_rescans += delta_search.delta_solves;
      stats_.delta_fallbacks += delta_search.delta_fallbacks;
      if (options_.metrics != nullptr) {
        options_.metrics->delta_rescans.Add(delta_search.delta_solves);
        options_.metrics->delta_fallbacks.Add(delta_search.delta_fallbacks);
      }
      if (delta_search.delta_solves > 0) {
        Emit(CepEvent::Kind::kDeltaRevalidate, tx);
      }
    }
    if (!choice.has_value()) {
      ++stats_.validation_retries;
      if (options_.metrics != nullptr) options_.metrics->validation_fails.Add();
      validation_waiters_[tx] = txs_[tx].input_entities;
      Emit(CepEvent::Kind::kValidationWait, tx);
      return ReqResult::kBlocked;
    }
    if (!SnapshotStillValid(snapshot, *choice)) {
      ++stats_.validation_rescans;
      if (options_.metrics != nullptr) {
        options_.metrics->validation_rescans.Add();
      }
      if (++rescans <= options_.max_validation_rescans) {
        prev_snapshot = std::move(snapshot);
        prev_choice = std::move(*choice);
        have_prev = true;
        continue;
      }
      // Starved by concurrent writers: close the optimistic window and run
      // the search inside the engine lock (the locked Figure 4 path). No
      // write can interleave, so this pass is final.
      ++stats_.validation_starved;
      if (options_.metrics != nullptr) {
        options_.metrics->validation_starved.Add();
      }
      if (!SolveAssignment(tx, {})) {
        ++stats_.validation_retries;
        if (options_.metrics != nullptr) {
          options_.metrics->validation_fails.Add();
        }
        validation_waiters_[tx] = txs_[tx].input_entities;
        Emit(CepEvent::Kind::kValidationWait, tx);
        return ReqResult::kBlocked;
      }
      return GrantValidation(tx);
    }
    InstallAssignment(tx, snapshot, *choice);
    return GrantValidation(tx);
  }
}

ReqResult CorrectExecutionProtocol::GrantValidation(int tx) {
  // Failpoint: the validation/execution boundary, after the assignment is
  // installed. Firing tears the attempt down post-install, exercising the
  // rollback of a fully assigned (but never executed) transaction.
  if (NONSERIAL_FAILPOINT("cep.post_install")) return ReqResult::kAborted;
  ++stats_.validations;
  if (options_.metrics != nullptr) options_.metrics->validations.Add();
  txs_[tx].phase = Phase::kExecuting;
  // A previous blocked attempt may have parked this transaction in the
  // waiter maps and a poll-driven retry (rather than a wakeup) got it
  // here; drop the stale registrations so the maps stay tight.
  DropWaiterEntries(tx);
  Emit(CepEvent::Kind::kValidated, tx);
  return ReqResult::kGranted;
}

ReqResult CorrectExecutionProtocol::Read(int tx, EntityId e, Value* out) {
  std::lock_guard<std::mutex> lock(mu_);
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.phase == Phase::kExecuting);
  NONSERIAL_CHECK(state.input_entities.contains(e))
      << "transaction '" << state.profile.name << "' reads entity " << e
      << " which is not in its input constraint (the protocol rejects reads "
         "without an Rv lock)";
  if (locks_.UpgradeToRead(tx, e) == KsLockOutcome::kBlocked) {
    read_waiters_[e].insert(tx);
    return ReqResult::kBlocked;
  }
  // A poll-driven retry may succeed without the waking WriteDone having
  // cleared this entry; erase-and-prune keeps the map from leaking.
  auto waiting = read_waiters_.find(e);
  if (waiting != read_waiters_.end()) {
    waiting->second.erase(tx);
    if (waiting->second.empty()) read_waiters_.erase(waiting);
  }
  *out = state.local_view[e];
  state.reads_done.insert(e);
  Emit(CepEvent::Kind::kRead, tx, -1, e, *out);
  return ReqResult::kGranted;
}

ReqResult CorrectExecutionProtocol::Write(int tx, EntityId e, Value value) {
  std::lock_guard<std::mutex> lock(mu_);
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.phase == Phase::kExecuting);
  KsLockOutcome outcome = locks_.Acquire(tx, e, KsLockMode::kW);
  int index = store_->Append(e, value, tx);
  // Epoch discipline: a version install makes memoized evaluations over
  // this entity stale (value-keyed entries stay sound; epochs keep the
  // cache from serving across store generations — see eval_cache.h).
  if (options_.eval_cache != nullptr) options_.eval_cache->BumpEntity(e);
  state.own_latest[e] = index;
  state.write_log.push_back({e, value});
  state.local_view[e] = value;
  Emit(CepEvent::Kind::kWrite, tx, -1, e, value);
  if (outcome == KsLockOutcome::kReEval) ReEvaluate(tx, e);
  return ReqResult::kGranted;
}

void CorrectExecutionProtocol::WriteDone(int tx, EntityId e) {
  std::lock_guard<std::mutex> lock(mu_);
  locks_.ReleaseWrite(tx, e);
  if (!locks_.HasActiveWriter(e)) {
    auto it = read_waiters_.find(e);
    if (it != read_waiters_.end()) {
      for (int waiter : it->second) Wake(waiter);
      read_waiters_.erase(it);
    }
  }
  WakeValidationWaiters(e);
}

void CorrectExecutionProtocol::ReEvaluate(int writer, EntityId e) {
  ++stats_.reevals;
  if (options_.metrics != nullptr) options_.metrics->reevals.Add();
  Emit(CepEvent::Kind::kReEval, writer, -1, e);
  for (int reader : locks_.Readers(e)) {
    if (reader == writer) continue;
    TxState& r = txs_[reader];
    if (r.phase == Phase::kValidating) {
      // Not yet assigned: simply retry validation with the new version.
      // (A reader mid-optimistic-search also lands here; its chain stamp
      // for `e` changed, so the pending install rescans on its own.)
      Wake(reader);
      continue;
    }
    if (r.phase != Phase::kExecuting) continue;
    if (!Reaches(writer, reader)) continue;  // Figure 4: path(P, W, R[i]).
    auto it = r.assigned.find(e);
    if (it == r.assigned.end()) continue;
    int author = store_->At(it->second).writer;
    if (author == writer) continue;
    bool author_precedes_writer =
        author == kInitialWriter || Reaches(author, writer);
    if (!author_precedes_writer) continue;  // Figure 4: path(P, V, W).
    if (r.reads_done.contains(e)) {
      // Already read the stale version: partial-order invalidation.
      ForceAbort(reader, &stats_.po_aborts, CepEvent::Kind::kPoAbort);
    } else {
      ReAssign(reader, writer, e);
    }
  }
}

void CorrectExecutionProtocol::ReAssign(int reader, int writer, EntityId e) {
  ++stats_.reassigns;
  if (options_.metrics != nullptr) options_.metrics->reassigns.Add();
  TxState& r = txs_[reader];
  std::map<EntityId, VersionRef> pinned;
  for (EntityId read_entity : r.reads_done) {
    pinned[read_entity] = r.assigned.at(read_entity);
  }
  pinned[e] = VersionRef{e, *store_->LatestIndexBy(e, writer)};
  if (!SolveAssignment(reader, pinned)) {
    ++stats_.reassign_failures;
    ForceAbort(reader, &stats_.cascade_aborts,
               CepEvent::Kind::kCascadeAbort);
    return;
  }
  Emit(CepEvent::Kind::kReAssign, reader, writer, e);
}

ReqResult CorrectExecutionProtocol::Commit(int tx) {
  WalCommitHandle durable;
  ReqResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    result = CommitLocked(tx, &durable);
  }
  // Durability wait OUTSIDE the engine lock (early lock release): the
  // engine stays free to validate, execute, and stage other transactions'
  // commits while this one waits for its group-commit flush epoch — this
  // is what lets concurrent committers share one device flush. Safe
  // because commit log order is FIFO: any dependent transaction's commit
  // record lands after ours, so a crashed prefix can never keep the
  // dependent while losing us. The handle's verdict is advisory (a failed
  // medium already dropped the record; recovery semantics govern).
  if (result == ReqResult::kGranted && store_->wal() != nullptr) {
    store_->wal()->WaitDurable(durable);
  }
  return result;
}

ReqResult CorrectExecutionProtocol::CommitLocked(int tx,
                                                 WalCommitHandle* durable) {
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.phase == Phase::kExecuting);
  // A pending forced abort (Figure 4 partial-order invalidation or a
  // cascade) kills the attempt even if the owner races it to Commit: both
  // run under the engine lock, so exactly one of {doom, commit} wins.
  if (state.doomed) return ReqResult::kAborted;
  // Termination rule 1: all P-predecessors have committed.
  for (int pred : state.profile.predecessors) {
    if (txs_[pred].phase != Phase::kCommitted) {
      commit_waiters_[pred].insert(tx);
      if (options_.metrics != nullptr) options_.metrics->commit_waits.Add();
      Emit(CepEvent::Kind::kCommitWait, tx, pred);
      return ReqResult::kBlocked;
    }
  }
  // Termination rule 2 (recoverability): the authors of every version in
  // this transaction's assignment have committed, so X(t) can never refer
  // to a rolled-back version after commit. Wait-cycles among mutually
  // assigned transactions are broken by aborting the requester.
  for (const auto& [e, ref] : state.assigned) {
    Version v = store_->At(ref);
    if (v.writer == kInitialWriter || v.writer == tx) continue;
    if (v.dead) {
      // The assigned version was rolled back and the re-assignment pass
      // missed it or was impossible: committing would publish a read of a
      // version that never existed. Abort instead — the author's *phase*
      // may even be committed (a later attempt of the same runtime id),
      // which is exactly why the version itself must be checked.
      ++stats_.cascade_aborts;
      if (options_.metrics != nullptr) options_.metrics->cascade_aborts.Add();
      return ReqResult::kAborted;
    }
    if (txs_[v.writer].phase == Phase::kCommitted) continue;
    if (WouldDeadlock(tx, v.writer)) return ReqResult::kAborted;
    commit_waiters_[v.writer].insert(tx);
    if (options_.metrics != nullptr) options_.metrics->commit_waits.Add();
    Emit(CepEvent::Kind::kCommitWait, tx, v.writer);
    return ReqResult::kBlocked;
  }
  // Termination rule 3: the output condition holds on the final state.
  bool output_holds =
      state.cached_output != nullptr
          ? state.cached_output->Eval(state.profile.output, state.local_view)
          : state.profile.output.Eval(state.local_view);
  if (!output_holds) {
    if (options_.metrics != nullptr) options_.metrics->output_aborts.Add();
    return ReqResult::kAborted;
  }
  // Failpoint: the execution/termination boundary, after every commit rule
  // has passed but before anything durable happens. Firing simulates a
  // last-instant termination failure.
  if (NONSERIAL_FAILPOINT("cep.pre_commit")) return ReqResult::kAborted;
  // Durability: the logical commit record (what the verifier needs to
  // replay this transaction) goes to the WAL strictly before the commit
  // marker CommitWriter logs. A crash between the two leaves the
  // transaction in-flight — recovery discards it, never half-commits it.
  if (store_->wal() != nullptr) {
    // The client idempotency token rides immediately before the payload:
    // both land before the commit marker, so the token is durable exactly
    // when the commit is — a resend after recovery finds it iff the commit
    // survived.
    if (state.commit_token != 0) {
      store_->wal()->LogCommitToken(tx, state.commit_token);
    }
    std::vector<int> feeders;
    for (const auto& [e, ref] : state.assigned) {
      int author = store_->At(ref).writer;
      if (author != kInitialWriter && author != tx) feeders.push_back(author);
    }
    store_->wal()->LogTxPayload(tx, state.profile.name, state.input_view,
                                std::move(feeders), state.write_log);
  }
  *durable = store_->CommitWriter(tx);
  locks_.ReleaseAll(tx);
  state.phase = Phase::kCommitted;

  TxRecord& record = records_[tx];
  record.name = state.profile.name;
  record.input_state = state.input_view;
  record.feeder_txs.clear();
  for (const auto& [e, ref] : state.assigned) {
    int author = store_->At(ref).writer;
    if (author != kInitialWriter && author != tx) {
      record.feeder_txs.insert(author);
    }
  }
  record.writes = state.write_log;
  record.committed = true;

  auto waiters = commit_waiters_.find(tx);
  if (waiters != commit_waiters_.end()) {
    for (int waiter : waiters->second) Wake(waiter);
    commit_waiters_.erase(waiters);
  }
  // Earlier blocked attempts may have left this transaction registered as
  // a waiter; it will never look at those signals again.
  DropWaiterEntries(tx);
  Emit(CepEvent::Kind::kCommitted, tx);
  return ReqResult::kGranted;
}

bool CorrectExecutionProtocol::WouldDeadlock(int tx, int target) const {
  // DFS through the commit-wait edges: does `target` (transitively) wait
  // for `tx`?
  std::vector<int> stack = {target};
  std::set<int> seen = {target};
  while (!stack.empty()) {
    int current = stack.back();
    stack.pop_back();
    if (current == tx) return true;
    for (const auto& [waited_on, waiters] : commit_waiters_) {
      if (waiters.contains(current) && !seen.contains(waited_on)) {
        seen.insert(waited_on);
        stack.push_back(waited_on);
      }
    }
  }
  return false;
}

void CorrectExecutionProtocol::Abort(int tx) {
  std::lock_guard<std::mutex> lock(mu_);
  TxState& state = txs_[tx];
  if (state.phase == Phase::kIdle) return;
  Emit(CepEvent::Kind::kAborted, tx);
  NONSERIAL_CHECK(state.phase != Phase::kCommitted)
      << "cannot abort committed transaction " << tx;
  std::vector<EntityId> written;
  for (const auto& entry : state.own_latest) written.push_back(entry.first);

  store_->RollbackWriter(tx);
  locks_.ReleaseAll(tx);

  // The rolled-back versions are gone; bump their entities' epochs so the
  // eval cache stops treating evaluations over them as fresh.
  if (options_.eval_cache != nullptr && !written.empty()) {
    for (EntityId e : written) options_.eval_cache->BumpEntity(e);
    Emit(CepEvent::Kind::kCacheInvalidate, tx);
  }

  // Readers assigned one of this transaction's (now dead) versions must be
  // re-assigned, or cascade-aborted if they already consumed a dead value.
  // The whole assignment is scanned before deciding: a reader that consumed
  // *any* dead version is doomed even when a different entity's dead
  // version is still unread (re-solving with the consumed version pinned
  // would smuggle the rolled-back value into a committed history).
  for (int other : live_) {
    if (other == tx) continue;
    TxState& o = txs_[other];
    if (o.phase != Phase::kExecuting) continue;
    bool uses_victim = false;
    bool read_victim = false;
    for (const auto& [e, ref] : o.assigned) {
      if (store_->At(ref).writer != tx) continue;
      uses_victim = true;
      if (o.reads_done.contains(e)) {
        read_victim = true;
        break;
      }
    }
    if (!uses_victim) continue;
    if (read_victim) {
      ForceAbort(other, &stats_.cascade_aborts, CepEvent::Kind::kCascadeAbort);
      continue;
    }
    // Every use is still unread; the pins (entities already read) therefore
    // reference other authors' live versions only.
    std::map<EntityId, VersionRef> pinned;
    for (EntityId read_entity : o.reads_done) {
      pinned[read_entity] = o.assigned.at(read_entity);
    }
    if (!SolveAssignment(other, pinned)) {
      ForceAbort(other, &stats_.cascade_aborts, CepEvent::Kind::kCascadeAbort);
    }
  }

  // Reset the attempt, keeping the registered profile (and the cached
  // clause hashes — they depend only on the profile's structure).
  TxProfile profile = std::move(state.profile);
  std::shared_ptr<const CachedPredicate> cached_input =
      std::move(state.cached_input);
  std::shared_ptr<const CachedPredicate> cached_output =
      std::move(state.cached_output);
  state = TxState();
  state.profile = std::move(profile);
  state.input_entities = state.profile.input.Entities();
  state.cached_input = std::move(cached_input);
  state.cached_output = std::move(cached_output);
  state.phase = Phase::kIdle;

  // Drop waiter registrations held by tx (pruning emptied entries — the
  // maps must not grow with churn).
  DropWaiterEntries(tx);

  // Transactions waiting on this commit must re-decide against the
  // (re-assigned) state rather than wait for a commit that won't come.
  auto commit_waiters = commit_waiters_.find(tx);
  if (commit_waiters != commit_waiters_.end()) {
    for (int waiter : commit_waiters->second) Wake(waiter);
    commit_waiters_.erase(commit_waiters);
  }

  // Entities this transaction was writing may now be writer-free.
  for (EntityId e : written) {
    if (!locks_.HasActiveWriter(e)) {
      auto it = read_waiters_.find(e);
      if (it != read_waiters_.end()) {
        for (int waiter : it->second) Wake(waiter);
        read_waiters_.erase(it);
      }
    }
    WakeValidationWaiters(e);
  }
}

void CorrectExecutionProtocol::DropWaiterEntries(int tx) {
  validation_waiters_.erase(tx);
  for (auto it = read_waiters_.begin(); it != read_waiters_.end();) {
    it->second.erase(tx);
    it = it->second.empty() ? read_waiters_.erase(it) : std::next(it);
  }
  for (auto it = commit_waiters_.begin(); it != commit_waiters_.end();) {
    it->second.erase(tx);
    it = it->second.empty() ? commit_waiters_.erase(it) : std::next(it);
  }
}

size_t CorrectExecutionProtocol::WaiterFootprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return validation_waiters_.size() + read_waiters_.size() +
         commit_waiters_.size();
}

void CorrectExecutionProtocol::InjectAbort(int tx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tx < 0 || tx >= static_cast<int>(txs_.size())) return;
  ForceAbort(tx, &stats_.injected_aborts, CepEvent::Kind::kInjectedAbort);
}

void CorrectExecutionProtocol::RestoreCommitted(int tx, TxRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  NONSERIAL_CHECK_GE(tx, 0);
  NONSERIAL_CHECK_LT(tx, static_cast<int>(txs_.size()))
      << "RestoreCommitted before Register";
  TxState& state = txs_[tx];
  NONSERIAL_CHECK(state.phase == Phase::kIdle)
      << "RestoreCommitted on an active transaction";
  state.phase = Phase::kCommitted;
  record.committed = true;
  if (record.name.empty()) record.name = state.profile.name;
  records_[tx] = std::move(record);
}

bool CorrectExecutionProtocol::Retire(int tx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.retirement) return false;
  if (tx < 0 || tx >= static_cast<int>(txs_.size())) return false;
  if (retired_[tx]) return true;
  TxState& state = txs_[tx];
  if (state.phase != Phase::kCommitted && state.phase != Phase::kIdle) {
    return false;  // Still in flight; not terminal.
  }
  // Eligibility: every direct P-successor already retired. Inductively, a
  // retired transaction then has no live transitive successor — the
  // invariant AllowableVersions' live-set scan depends on.
  for (int succ : precedence_.OutEdges(tx)) {
    if (succ >= static_cast<int>(retired_.size()) || !retired_[succ]) {
      return false;
    }
  }
  retired_[tx] = 1;
  live_.erase(tx);
  // Reclaim the attempt state (assignment, views, write log, profile); the
  // phase survives — commit rule 2 still consults the writer's phase when a
  // live reader adopted the baseline version — and records_[tx] keeps the
  // committed outcome for the verifier.
  Phase phase = state.phase;
  state = TxState();
  state.phase = phase;
  ++stats_.retired;
  Emit(CepEvent::Kind::kRetired, tx);
  return true;
}

bool CorrectExecutionProtocol::IsRetired(int tx) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tx >= 0 && tx < static_cast<int>(retired_.size()) &&
         retired_[tx] != 0;
}

void CorrectExecutionProtocol::SetCommitToken(int tx, uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  NONSERIAL_CHECK(tx >= 0 && tx < static_cast<int>(txs_.size()))
      << "SetCommitToken before Register";
  txs_[tx].commit_token = token;
}

void CorrectExecutionProtocol::WakeValidationWaiters(EntityId e) {
  for (auto it = validation_waiters_.begin();
       it != validation_waiters_.end();) {
    if (it->second.contains(e)) {
      Wake(it->first);
      it = validation_waiters_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<VersionRef> CorrectExecutionProtocol::PinnedVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VersionRef> out;
  for (int tx : live_) {
    const TxState& state = txs_[tx];
    if (state.phase != Phase::kValidating &&
        state.phase != Phase::kExecuting) {
      continue;
    }
    for (const auto& [e, ref] : state.assigned) out.push_back(ref);
  }
  return out;
}

const ValueVector* CorrectExecutionProtocol::InputView(int tx) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tx < 0 || tx >= static_cast<int>(txs_.size())) return nullptr;
  const TxState& state = txs_[tx];
  if (state.phase != Phase::kExecuting &&
      state.phase != Phase::kCommitted) {
    return nullptr;
  }
  return &state.input_view;
}

bool CorrectExecutionProtocol::IsCommitted(int tx) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tx >= 0 && tx < static_cast<int>(txs_.size()) &&
         txs_[tx].phase == Phase::kCommitted;
}

CorrectExecutionProtocol::Stats CorrectExecutionProtocol::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CorrectExecutionProtocol::Wake(int tx) { wakeups_.insert(tx); }

void CorrectExecutionProtocol::ForceAbort(int tx, int64_t* counter,
                                          CepEvent::Kind reason) {
  TxState& state = txs_[tx];
  if (state.phase == Phase::kIdle || state.phase == Phase::kCommitted) return;
  if (state.doomed) return;  // Already condemned (signal may be drained).
  ++*counter;
  if (options_.metrics != nullptr) {
    switch (reason) {
      case CepEvent::Kind::kPoAbort:
        options_.metrics->po_aborts.Add();
        break;
      case CepEvent::Kind::kInjectedAbort:
        options_.metrics->injected_aborts.Add();
        break;
      default:
        options_.metrics->cascade_aborts.Add();
        break;
    }
  }
  state.doomed = true;
  forced_aborts_.insert(tx);
  Emit(reason, tx);
}

std::vector<int> CorrectExecutionProtocol::TakeWakeups() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out(wakeups_.begin(), wakeups_.end());
  wakeups_.clear();
  return out;
}

std::vector<int> CorrectExecutionProtocol::TakeForcedAborts() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out(forced_aborts_.begin(), forced_aborts_.end());
  forced_aborts_.clear();
  return out;
}

}  // namespace nonserial
