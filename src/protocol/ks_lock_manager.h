#ifndef NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_
#define NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_

#include <set>
#include <vector>

#include "predicate/value.h"

namespace nonserial {

/// The lock modes of the paper's protocol (Figure 3): Rv (read for
/// validation), R (read), and W (write).
enum class KsLockMode : uint8_t { kRv, kR, kW };

/// Outcome of a lock request per the Figure 3 compatibility matrix.
enum class KsLockOutcome {
  kGranted,  ///< "true": lock granted.
  kBlocked,  ///< "false": requester blocks (only Rv/R vs an active W).
  kReEval    ///< "re-eval": granted, but existing readers must re-evaluate.
};

/// Lock table implementing the paper's unconventional compatibility matrix:
///
///            held:   Rv      R       W
///   requested Rv     true    true    false
///             R      true    true    false
///             W      re-eval re-eval true
///
/// Locks are placed on the entity (type), not on a version. W locks are
/// short — held only for the duration of one write — and never block on
/// anything; instead a W acquisition returns kReEval when readers hold
/// Rv/R locks so the protocol can run the Figure 4 re-evaluation routine.
class KsLockManager {
 public:
  explicit KsLockManager(int num_entities);

  /// Requests a lock in `mode` for `tx` on entity `e`, per the matrix.
  /// kGranted/kReEval record the lock; kBlocked records nothing.
  KsLockOutcome Acquire(int tx, EntityId e, KsLockMode mode);

  /// Upgrades an Rv lock to R (a read request). Returns kBlocked if a
  /// different transaction holds an active W on `e`; kGranted otherwise.
  /// The Rv lock must be held.
  KsLockOutcome UpgradeToRead(int tx, EntityId e);

  /// Releases one W hold of `tx` on `e` (end of the write operation).
  void ReleaseWrite(int tx, EntityId e);

  /// Releases every lock `tx` holds (termination).
  void ReleaseAll(int tx);

  bool HoldsRv(int tx, EntityId e) const;
  bool HoldsR(int tx, EntityId e) const;
  bool HasActiveWriter(EntityId e, int other_than = -1) const;

  /// Current Rv and R holders of `e` (the re-evaluation audience).
  std::vector<int> Readers(EntityId e) const;

  int num_entities() const { return static_cast<int>(rv_holders_.size()); }

 private:
  std::vector<std::set<int>> rv_holders_;
  std::vector<std::set<int>> r_holders_;
  std::vector<std::multiset<int>> w_holders_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_
