#ifndef NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_
#define NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/metrics.h"
#include "predicate/value.h"

namespace nonserial {

/// The lock modes of the paper's protocol (Figure 3): Rv (read for
/// validation), R (read), and W (write).
enum class KsLockMode : uint8_t { kRv, kR, kW };

/// Outcome of a lock request per the Figure 3 compatibility matrix.
enum class KsLockOutcome {
  kGranted,  ///< "true": lock granted.
  kBlocked,  ///< "false": requester blocks (only Rv/R vs an active W).
  kReEval    ///< "re-eval": granted, but existing readers must re-evaluate.
};

/// Lock table implementing the paper's unconventional compatibility matrix:
///
///            held:   Rv      R       W
///   requested Rv     true    true    false
///             R      true    true    false
///             W      re-eval re-eval true
///
/// Locks are placed on the entity (type), not on a version. W locks are
/// short — held only for the duration of one write — and never block on
/// anything; instead a W acquisition returns kReEval when readers hold
/// Rv/R locks so the protocol can run the Figure 4 re-evaluation routine.
///
/// Thread safety: the table is sharded by entity with one mutex per shard,
/// so Figure-3 acquisitions on different entities never touch the same
/// lock word. Single-entity operations lock exactly one shard; ReleaseAll
/// walks the shards one at a time (each entity's state changes atomically,
/// the cross-entity sweep is not an atomic cut — the protocol engine
/// serializes termination itself).
class KsLockManager {
 public:
  /// `metrics`, when non-null, receives lock outcome counters (grants,
  /// blocks, re-evals). Not owned; must outlive the manager.
  explicit KsLockManager(int num_entities, ProtocolMetrics* metrics = nullptr);

  /// Requests a lock in `mode` for `tx` on entity `e`, per the matrix.
  /// kGranted/kReEval record the lock; kBlocked records nothing.
  KsLockOutcome Acquire(int tx, EntityId e, KsLockMode mode);

  /// Upgrades an Rv lock to R (a read request). Returns kBlocked if a
  /// different transaction holds an active W on `e`; kGranted otherwise.
  /// The Rv lock must be held.
  KsLockOutcome UpgradeToRead(int tx, EntityId e);

  /// Releases one W hold of `tx` on `e` (end of the write operation).
  void ReleaseWrite(int tx, EntityId e);

  /// Releases every lock `tx` holds (termination).
  void ReleaseAll(int tx);

  bool HoldsRv(int tx, EntityId e) const;
  bool HoldsR(int tx, EntityId e) const;
  bool HasActiveWriter(EntityId e, int other_than = -1) const;

  /// Number of W holds `tx` currently has on `e` (diagnostics/tests).
  int WriteHolds(int tx, EntityId e) const;

  /// Current Rv and R holders of `e` (the re-evaluation audience).
  std::vector<int> Readers(EntityId e) const;

  int num_entities() const { return static_cast<int>(entities_.size()); }

 private:
  static constexpr int kNumShards = 32;
  static constexpr int kShardMask = kNumShards - 1;

  /// Per-entity lock state. rv/r are sets (one hold per transaction); w is
  /// a per-transaction hold count — one write operation in flight per
  /// increment, so a transaction writing the same entity twice holds two
  /// and each WriteDone releases exactly one.
  struct EntityLocks {
    std::set<int> rv;
    std::set<int> r;
    std::multiset<int> w;
  };

  struct Shard {
    mutable std::mutex mu;
  };

  std::mutex& ShardOf(EntityId e) const { return shards_[e & kShardMask].mu; }

  // Caller must hold ShardOf(e).
  bool HasActiveWriterLocked(EntityId e, int other_than) const;

  std::vector<EntityLocks> entities_;
  std::unique_ptr<Shard[]> shards_;
  ProtocolMetrics* metrics_;
};

}  // namespace nonserial

#endif  // NONSERIAL_PROTOCOL_KS_LOCK_MANAGER_H_
