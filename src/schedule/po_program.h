#ifndef NONSERIAL_SCHEDULE_PO_PROGRAM_H_
#define NONSERIAL_SCHEDULE_PO_PROGRAM_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "schedule/schedule.h"

namespace nonserial {

/// A transaction program whose operations are only *partially* ordered —
/// the basis of the paper's partial-order serializability classes <SR and
/// <CSR (Section 4.2): "a transaction is assumed to execute correctly if
/// its operations are executed in any total order consistent with the
/// partial order given in its implementation (T, P)."
///
/// Operationally the gain is scheduling freedom: an operation whose target
/// is busy can be deferred while another ready operation proceeds. The
/// enumeration helpers below quantify that freedom.
struct PoProgram {
  TxId tx = 0;
  std::vector<Op> ops;                          ///< All ops carry `tx`.
  std::vector<std::pair<int, int>> order;       ///< DAG edges over op indices.
};

/// Builds a totally ordered program (a chain) from an op list.
PoProgram ChainProgram(TxId tx, std::vector<Op> ops);

/// Validates: ops carry the program's tx and the order is an acyclic DAG
/// over valid indices.
Status ValidatePoProgram(const PoProgram& program);

/// True iff `schedule` is a legal interleaving of the programs: each
/// transaction's observed operation sequence is a linear extension of its
/// program DAG (exact matching with backtracking, so duplicate identical
/// operations are handled).
bool IsLegalInterleaving(const Schedule& schedule,
                         const std::vector<PoProgram>& programs);

/// Enumerates every schedule obtainable by interleaving the programs with
/// each transaction's ops in any linear extension of its DAG. `fn` returns
/// false to stop early. Returns the number of schedules visited (identical
/// schedules arising from permuting equal ready ops are visited once per
/// derivation).
int64_t ForEachPoInterleaving(const std::vector<PoProgram>& programs,
                              int num_entities,
                              const std::function<bool(const Schedule&)>& fn);

/// Number of linear extensions of one program's DAG (the intra-transaction
/// freedom the partial order buys).
int64_t CountLinearExtensions(const PoProgram& program);

}  // namespace nonserial

#endif  // NONSERIAL_SCHEDULE_PO_PROGRAM_H_
