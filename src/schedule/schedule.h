#ifndef NONSERIAL_SCHEDULE_SCHEDULE_H_
#define NONSERIAL_SCHEDULE_SCHEDULE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "predicate/value.h"

namespace nonserial {

/// Dense transaction identifier within a schedule, 0-based. Displayed as
/// t1, t2, … to match the paper's examples.
using TxId = int;

constexpr TxId kInitialTx = -1;  ///< The pseudo-transaction t_0.

enum class OpKind : uint8_t { kRead, kWrite };

/// One step of a classical schedule.
struct Op {
  TxId tx = 0;
  OpKind kind = OpKind::kRead;
  EntityId entity = kInvalidEntity;

  bool operator==(const Op& other) const {
    return tx == other.tx && kind == other.kind && entity == other.entity;
  }
};

/// A classical interleaved schedule: a totally ordered sequence of read and
/// write steps from a set of transactions over a set of entities (the
/// standard model of Section 4.1). The schedule owns a small entity-name
/// table so the paper's examples can be written textually.
class Schedule {
 public:
  Schedule() = default;

  /// Registers (or looks up) an entity by name.
  EntityId InternEntity(const std::string& name);

  /// Appends a step. Grows the transaction count as needed.
  void Append(TxId tx, OpKind kind, EntityId entity);
  void AppendRead(TxId tx, const std::string& entity);
  void AppendWrite(TxId tx, const std::string& entity);

  const std::vector<Op>& ops() const { return ops_; }
  int num_txs() const { return num_txs_; }
  int num_entities() const { return static_cast<int>(entity_names_.size()); }
  const std::string& EntityName(EntityId e) const { return entity_names_[e]; }

  /// Transactions that issue at least one op.
  std::set<TxId> ActiveTxs() const;

  /// Program order: op indices of one transaction, in temporal order.
  std::vector<int> OpsOf(TxId tx) const;

  /// For each op index that is a read: the transaction whose write it reads
  /// under single-version semantics (the last write of the entity strictly
  /// before it), or kInitialTx. Non-read positions hold kInitialTx - 1.
  std::vector<TxId> SingleVersionReadsFrom() const;

  /// Step-level read source: which *write step* (writer transaction plus
  /// the write's index in the writer's program) each read observes under
  /// single-version semantics. This granularity matters when a transaction
  /// writes the same entity more than once — view equivalence is defined on
  /// write steps, not writers.
  struct ReadSource {
    TxId writer = kInitialTx;
    int writer_op = -1;  ///< Program-order op index within the writer.

    bool operator==(const ReadSource& other) const = default;
  };

  /// One entry per op; non-read positions hold the default ReadSource.
  std::vector<ReadSource> ReadSources() const;

  /// The last writer of each entity, or kInitialTx if never written.
  std::vector<TxId> FinalWriters() const;

  /// Projection onto an entity set: steps touching those entities only,
  /// preserving order, transaction ids, and the entity table (paper,
  /// Section 4.2, decomposition by conjuncts).
  Schedule ProjectEntities(const std::set<EntityId>& entities) const;

  /// The serial schedule obtained by concatenating each transaction's
  /// program (in the given transaction order).
  Schedule Serialize(const std::vector<TxId>& order) const;

  /// Renders as "R1(x) W1(x) R2(y) …".
  std::string ToString() const;

  /// Renders as the paper's per-transaction rows, one line per transaction.
  std::string ToGrid() const;

 private:
  std::vector<Op> ops_;
  int num_txs_ = 0;
  std::vector<std::string> entity_names_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
};

/// Parses a schedule from compact text: whitespace-separated steps of the
/// form `R<tx>(<entity>)` or `W<tx>(<entity>)`, 1-based transaction numbers,
/// e.g. "R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)" (Example 1 of the
/// paper).
StatusOr<Schedule> ParseSchedule(const std::string& text);

}  // namespace nonserial

#endif  // NONSERIAL_SCHEDULE_SCHEDULE_H_
