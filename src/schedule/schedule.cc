#include "schedule/schedule.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

EntityId Schedule::InternEntity(const std::string& name) {
  auto it = entity_by_name_.find(name);
  if (it != entity_by_name_.end()) return it->second;
  EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_by_name_.emplace(name, id);
  return id;
}

void Schedule::Append(TxId tx, OpKind kind, EntityId entity) {
  NONSERIAL_CHECK_GE(tx, 0);
  NONSERIAL_CHECK_GE(entity, 0);
  NONSERIAL_CHECK_LT(entity, num_entities());
  ops_.push_back(Op{tx, kind, entity});
  num_txs_ = std::max(num_txs_, tx + 1);
}

void Schedule::AppendRead(TxId tx, const std::string& entity) {
  Append(tx, OpKind::kRead, InternEntity(entity));
}

void Schedule::AppendWrite(TxId tx, const std::string& entity) {
  Append(tx, OpKind::kWrite, InternEntity(entity));
}

std::set<TxId> Schedule::ActiveTxs() const {
  std::set<TxId> out;
  for (const Op& op : ops_) out.insert(op.tx);
  return out;
}

std::vector<int> Schedule::OpsOf(TxId tx) const {
  std::vector<int> out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].tx == tx) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<TxId> Schedule::SingleVersionReadsFrom() const {
  std::vector<TxId> last_writer(num_entities(), kInitialTx);
  std::vector<TxId> out(ops_.size(), kInitialTx - 1);
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    if (op.kind == OpKind::kRead) {
      out[i] = last_writer[op.entity];
    } else {
      last_writer[op.entity] = op.tx;
    }
  }
  return out;
}

std::vector<Schedule::ReadSource> Schedule::ReadSources() const {
  std::vector<ReadSource> last_write(num_entities());
  std::vector<int> ops_seen(num_txs(), 0);
  std::vector<ReadSource> out(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    if (op.kind == OpKind::kRead) {
      out[i] = last_write[op.entity];
    } else {
      last_write[op.entity] = ReadSource{op.tx, ops_seen[op.tx]};
    }
    ++ops_seen[op.tx];
  }
  return out;
}

std::vector<TxId> Schedule::FinalWriters() const {
  std::vector<TxId> out(num_entities(), kInitialTx);
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kWrite) out[op.entity] = op.tx;
  }
  return out;
}

Schedule Schedule::ProjectEntities(const std::set<EntityId>& entities) const {
  Schedule out;
  out.entity_names_ = entity_names_;
  out.entity_by_name_ = entity_by_name_;
  for (const Op& op : ops_) {
    if (entities.contains(op.entity)) {
      out.ops_.push_back(op);
      out.num_txs_ = std::max(out.num_txs_, op.tx + 1);
    }
  }
  // Keep the transaction-count envelope of the original so projections and
  // originals index transactions identically.
  out.num_txs_ = num_txs_;
  return out;
}

Schedule Schedule::Serialize(const std::vector<TxId>& order) const {
  Schedule out;
  out.entity_names_ = entity_names_;
  out.entity_by_name_ = entity_by_name_;
  out.num_txs_ = num_txs_;
  for (TxId tx : order) {
    for (int i : OpsOf(tx)) out.ops_.push_back(ops_[i]);
  }
  return out;
}

std::string Schedule::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0) os << " ";
    os << (ops_[i].kind == OpKind::kRead ? "R" : "W") << (ops_[i].tx + 1)
       << "(" << entity_names_[ops_[i].entity] << ")";
  }
  return os.str();
}

std::string Schedule::ToGrid() const {
  std::ostringstream os;
  for (TxId tx = 0; tx < num_txs_; ++tx) {
    os << "t" << (tx + 1) << ":";
    for (const Op& op : ops_) {
      std::string cell;
      if (op.tx == tx) {
        cell = StrCat(op.kind == OpKind::kRead ? "R(" : "W(",
                      entity_names_[op.entity], ")");
      }
      os << " " << cell << std::string(cell.size() < 6 ? 6 - cell.size() : 0,
                                       ' ');
    }
    os << "\n";
  }
  return os.str();
}

StatusOr<Schedule> ParseSchedule(const std::string& text) {
  Schedule schedule;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    if (token.size() < 4) {
      return Status::InvalidArgument(StrCat("bad step '", token, "'"));
    }
    OpKind kind;
    if (token[0] == 'R' || token[0] == 'r') {
      kind = OpKind::kRead;
    } else if (token[0] == 'W' || token[0] == 'w') {
      kind = OpKind::kWrite;
    } else {
      return Status::InvalidArgument(
          StrCat("step '", token, "' must start with R or W"));
    }
    size_t paren = token.find('(');
    if (paren == std::string::npos || token.back() != ')' || paren < 2) {
      return Status::InvalidArgument(
          StrCat("step '", token, "' must look like R1(x)"));
    }
    int64_t tx_number = 0;
    if (!ParseInt64(token.substr(1, paren - 1), &tx_number) ||
        tx_number < 1) {
      return Status::InvalidArgument(
          StrCat("bad transaction number in step '", token, "'"));
    }
    std::string entity = token.substr(paren + 1, token.size() - paren - 2);
    if (entity.empty()) {
      return Status::InvalidArgument(StrCat("empty entity in '", token, "'"));
    }
    schedule.Append(static_cast<TxId>(tx_number - 1), kind,
                    schedule.InternEntity(entity));
  }
  return schedule;
}

}  // namespace nonserial
