#include "schedule/po_program.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "graph/digraph.h"

namespace nonserial {

PoProgram ChainProgram(TxId tx, std::vector<Op> ops) {
  PoProgram program;
  program.tx = tx;
  program.ops = std::move(ops);
  for (size_t i = 0; i + 1 < program.ops.size(); ++i) {
    program.order.push_back({static_cast<int>(i), static_cast<int>(i) + 1});
  }
  for (Op& op : program.ops) op.tx = tx;
  return program;
}

Status ValidatePoProgram(const PoProgram& program) {
  int n = static_cast<int>(program.ops.size());
  for (const Op& op : program.ops) {
    if (op.tx != program.tx) {
      return Status::InvalidArgument(
          StrCat("program for t", program.tx + 1, " contains op of t",
                 op.tx + 1));
    }
  }
  Digraph dag(n);
  for (auto [a, b] : program.order) {
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Status::InvalidArgument("order edge out of range");
    }
    dag.AddEdge(a, b);
  }
  if (dag.HasCycle()) {
    return Status::InvalidArgument("program order is cyclic");
  }
  return Status::OK();
}

namespace {

struct ProgramState {
  const PoProgram* program;
  std::vector<std::vector<int>> preds;  // Per op: prerequisite op indices.
  std::vector<bool> consumed;

  explicit ProgramState(const PoProgram& p) : program(&p) {
    preds.resize(p.ops.size());
    consumed.assign(p.ops.size(), false);
    for (auto [a, b] : p.order) preds[b].push_back(a);
  }

  bool Ready(int i) const {
    if (consumed[i]) return false;
    for (int p : preds[i]) {
      if (!consumed[p]) return false;
    }
    return true;
  }
};

// Backtracking match: can the remaining observed ops (from `pos`) be
// explained as a linear extension?
bool MatchRemaining(const std::vector<Op>& observed, size_t pos,
                    ProgramState* state) {
  if (pos == observed.size()) return true;
  const Op& want = observed[pos];
  for (size_t i = 0; i < state->program->ops.size(); ++i) {
    if (!state->Ready(static_cast<int>(i))) continue;
    const Op& have = state->program->ops[i];
    if (have.kind != want.kind || have.entity != want.entity) continue;
    state->consumed[i] = true;
    if (MatchRemaining(observed, pos + 1, state)) return true;
    state->consumed[i] = false;
  }
  return false;
}

}  // namespace

bool IsLegalInterleaving(const Schedule& schedule,
                         const std::vector<PoProgram>& programs) {
  // Group observed ops per transaction.
  std::vector<std::vector<Op>> observed(schedule.num_txs());
  for (const Op& op : schedule.ops()) observed[op.tx].push_back(op);

  std::vector<bool> covered(schedule.num_txs(), false);
  for (const PoProgram& program : programs) {
    NONSERIAL_CHECK(ValidatePoProgram(program).ok());
    if (program.tx >= schedule.num_txs()) {
      if (!program.ops.empty()) return false;
      continue;
    }
    covered[program.tx] = true;
    if (observed[program.tx].size() != program.ops.size()) return false;
    ProgramState state(program);
    if (!MatchRemaining(observed[program.tx], 0, &state)) return false;
  }
  for (TxId tx = 0; tx < schedule.num_txs(); ++tx) {
    if (!observed[tx].empty() && !covered[tx]) return false;
  }
  return true;
}

namespace {

int64_t EnumerateRec(const std::vector<PoProgram>& programs,
                     std::vector<ProgramState>* states, int num_entities,
                     std::vector<Op>* merged, size_t total,
                     const std::function<bool(const Schedule&)>& fn,
                     bool* stop) {
  if (*stop) return 0;
  if (merged->size() == total) {
    Schedule schedule;
    for (int e = 0; e < num_entities; ++e) {
      schedule.InternEntity(StrCat("x", e));
    }
    for (const Op& op : *merged) {
      schedule.Append(op.tx, op.kind, op.entity);
    }
    if (!fn(schedule)) *stop = true;
    return 1;
  }
  int64_t count = 0;
  for (size_t t = 0; t < programs.size(); ++t) {
    ProgramState& state = (*states)[t];
    for (size_t i = 0; i < programs[t].ops.size(); ++i) {
      if (!state.Ready(static_cast<int>(i))) continue;
      state.consumed[i] = true;
      merged->push_back(programs[t].ops[i]);
      count += EnumerateRec(programs, states, num_entities, merged, total,
                            fn, stop);
      merged->pop_back();
      state.consumed[i] = false;
      if (*stop) return count;
    }
  }
  return count;
}

}  // namespace

int64_t ForEachPoInterleaving(
    const std::vector<PoProgram>& programs, int num_entities,
    const std::function<bool(const Schedule&)>& fn) {
  std::vector<ProgramState> states;
  size_t total = 0;
  for (const PoProgram& program : programs) {
    NONSERIAL_CHECK(ValidatePoProgram(program).ok());
    states.emplace_back(program);
    total += program.ops.size();
  }
  std::vector<Op> merged;
  bool stop = false;
  return EnumerateRec(programs, &states, num_entities, &merged, total, fn,
                      &stop);
}

namespace {

int64_t CountExtensionsRec(ProgramState* state, int remaining) {
  if (remaining == 0) return 1;
  int64_t count = 0;
  for (size_t i = 0; i < state->program->ops.size(); ++i) {
    if (!state->Ready(static_cast<int>(i))) continue;
    state->consumed[i] = true;
    count += CountExtensionsRec(state, remaining - 1);
    state->consumed[i] = false;
  }
  return count;
}

}  // namespace

int64_t CountLinearExtensions(const PoProgram& program) {
  NONSERIAL_CHECK(ValidatePoProgram(program).ok());
  ProgramState state(program);
  return CountExtensionsRec(&state,
                            static_cast<int>(program.ops.size()));
}

}  // namespace nonserial
