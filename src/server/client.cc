#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nonserial {

namespace {

Status SocketError(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { Disconnect(); }

Status Client::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return SocketError("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SocketError("connect");
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  inbuf_.clear();
  return Status::OK();
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendRaw(const std::string& bytes) { return SendAll(bytes); }

StatusOr<wire::Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char buf[4096];
  for (;;) {
    wire::DecodedFrame frame = wire::DecodeFrame(inbuf_.data(), inbuf_.size());
    if (frame.status == wire::FrameStatus::kCorrupt) {
      // A server never emits corrupt frames; treat it as a broken stream.
      Disconnect();
      return Status::Internal("corrupt response frame: " + frame.error);
    }
    if (frame.status == wire::FrameStatus::kOk) {
      inbuf_.erase(0, frame.frame_bytes);
      if (frame.type != wire::MsgType::kResponse) {
        Disconnect();
        return Status::Internal("unexpected non-response frame from server");
      }
      wire::Response response;
      Status s = wire::DecodeResponse(frame.payload, &response);
      if (!s.ok()) {
        Disconnect();
        return s;
      }
      return response;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("recv");
    }
    if (n == 0) {
      // The server hard-closes the connection on corrupt frames; surface
      // that distinctly so fuzz callers can assert on it.
      Disconnect();
      return Status::Aborted("connection closed by server");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<wire::Response> Client::Call(const wire::Request& request) {
  Status s = SendAll(wire::EncodeRequest(request));
  if (!s.ok()) return s;
  return ReadResponse();
}

namespace {

/// Folds a response into the session Status vocabulary.
Status ToStatus(const wire::Response& response) {
  if (response.code == StatusCode::kOk) return Status::OK();
  return Status(response.code, response.message);
}

}  // namespace

Status Client::StagePredicates(const Predicate& input,
                               const Predicate& output) {
  wire::Request request;
  request.type = wire::MsgType::kPredicate;
  request.input = input;
  request.output = output;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

StatusOr<int> Client::Begin(const std::string& name,
                            const std::vector<int>& predecessors,
                            const Predicate& input, const Predicate& output) {
  wire::Request request;
  request.type = wire::MsgType::kBegin;
  request.name = name;
  request.predecessors = predecessors;
  request.use_staged = false;
  request.input = input;
  request.output = output;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return static_cast<int>(response->value);
}

StatusOr<int> Client::BeginStaged(const std::string& name,
                                  const std::vector<int>& predecessors) {
  wire::Request request;
  request.type = wire::MsgType::kBegin;
  request.name = name;
  request.predecessors = predecessors;
  request.use_staged = true;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return static_cast<int>(response->value);
}

StatusOr<Value> Client::Read(EntityId entity) {
  wire::Request request;
  request.type = wire::MsgType::kRead;
  request.entity = entity;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return response->value;
}

Status Client::Write(EntityId entity, Value value) {
  wire::Request request;
  request.type = wire::MsgType::kWrite;
  request.entity = entity;
  request.value = value;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

Status Client::Commit() {
  wire::Request request;
  request.type = wire::MsgType::kCommit;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

Status Client::Abort() {
  wire::Request request;
  request.type = wire::MsgType::kAbort;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

StatusOr<Value> Client::Ping(Value token) {
  wire::Request request;
  request.type = wire::MsgType::kPing;
  request.value = token;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return response->value;
}

}  // namespace nonserial
