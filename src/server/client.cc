#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

namespace nonserial {

namespace {

Status SocketError(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { Disconnect(); }

Status Client::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return SocketError("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = SocketError("connect");
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  inbuf_.clear();
  return Status::OK();
}

Status Client::SetRecvTimeoutMs(int64_t ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return SocketError("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

Status Client::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendRaw(const std::string& bytes) { return SendAll(bytes); }

StatusOr<wire::Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char buf[4096];
  for (;;) {
    wire::DecodedFrame frame = wire::DecodeFrame(inbuf_.data(), inbuf_.size());
    if (frame.status == wire::FrameStatus::kCorrupt) {
      // A server never emits corrupt frames; treat it as a broken stream.
      Disconnect();
      return Status::Internal("corrupt response frame: " + frame.error);
    }
    if (frame.status == wire::FrameStatus::kOk) {
      inbuf_.erase(0, frame.frame_bytes);
      if (frame.type != wire::MsgType::kResponse) {
        Disconnect();
        return Status::Internal("unexpected non-response frame from server");
      }
      wire::Response response;
      Status s = wire::DecodeResponse(frame.payload, &response);
      if (!s.ok()) {
        Disconnect();
        return s;
      }
      return response;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return SocketError("recv");
    }
    if (n == 0) {
      // The server hard-closes the connection on corrupt frames; surface
      // that distinctly so fuzz callers can assert on it.
      Disconnect();
      return Status::Aborted("connection closed by server");
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
}

StatusOr<wire::Response> Client::Call(const wire::Request& request) {
  Status s = SendAll(wire::EncodeRequest(request));
  if (!s.ok()) return s;
  return ReadResponse();
}

namespace {

/// Folds a response into the session Status vocabulary.
Status ToStatus(const wire::Response& response) {
  if (response.code == StatusCode::kOk) return Status::OK();
  return Status(response.code, response.message);
}

}  // namespace

Status Client::StagePredicates(const Predicate& input,
                               const Predicate& output) {
  wire::Request request;
  request.type = wire::MsgType::kPredicate;
  request.input = input;
  request.output = output;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

StatusOr<int> Client::Begin(const std::string& name,
                            const std::vector<int>& predecessors,
                            const Predicate& input, const Predicate& output) {
  wire::Request request;
  request.type = wire::MsgType::kBegin;
  request.name = name;
  request.predecessors = predecessors;
  request.use_staged = false;
  request.input = input;
  request.output = output;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return static_cast<int>(response->value);
}

StatusOr<int> Client::BeginStaged(const std::string& name,
                                  const std::vector<int>& predecessors) {
  wire::Request request;
  request.type = wire::MsgType::kBegin;
  request.name = name;
  request.predecessors = predecessors;
  request.use_staged = true;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return static_cast<int>(response->value);
}

StatusOr<Value> Client::Read(EntityId entity) {
  wire::Request request;
  request.type = wire::MsgType::kRead;
  request.entity = entity;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return response->value;
}

Status Client::Write(EntityId entity, Value value) {
  wire::Request request;
  request.type = wire::MsgType::kWrite;
  request.entity = entity;
  request.value = value;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

Status Client::Commit(uint64_t token) {
  wire::Request request;
  request.type = wire::MsgType::kCommit;
  request.token = token;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

Status Client::Abort() {
  wire::Request request;
  request.type = wire::MsgType::kAbort;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  return ToStatus(*response);
}

StatusOr<Value> Client::Ping(Value token) {
  wire::Request request;
  request.type = wire::MsgType::kPing;
  request.value = token;
  StatusOr<wire::Response> response = Call(request);
  if (!response.ok()) return response.status();
  Status s = ToStatus(*response);
  if (!s.ok()) return s;
  return response->value;
}

// --- RetryingClient ---------------------------------------------------------

namespace {

uint64_t SplitMix64(uint64_t* state) {
  *state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Decorrelates the token streams of clients sharing a seed (the default
/// RetryingClientOptions ships seed=1): the server's token table is keyed
/// by token alone, so overlapping streams would answer one client's commit
/// with another's verdict.
uint64_t FreshTokenEntropy() {
  std::random_device rd;
  uint64_t entropy = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  entropy ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  entropy ^= static_cast<uint64_t>(::getpid()) << 48;
  return entropy;
}

/// Salt keeping the deterministic token stream distinct from the backoff
/// jitter stream (both derive from options.seed).
constexpr uint64_t kTokenStreamSalt = 0xA5F1'52C6'7D38'9B04ULL;

/// Whether a response code means the server-side transaction is gone:
/// kAborted (the protocol rolled it back) or kFailedPrecondition (the
/// session has no open transaction). Every other error — e.g.
/// kInvalidArgument for an out-of-range entity — leaves the transaction
/// open server-side, so the client must keep considering it open too.
bool TerminatesTransaction(StatusCode code) {
  return code == StatusCode::kAborted ||
         code == StatusCode::kFailedPrecondition;
}

}  // namespace

RetryingClient::RetryingClient(RetryingClientOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      token_rng_(options_.deterministic_tokens
                     ? options_.seed ^ kTokenStreamSalt
                     : options_.seed ^ FreshTokenEntropy()) {}

uint64_t RetryingClient::NextBits() {
  // splitmix64 over the seed: the backoff-jitter stream replays from
  // options_.seed, keeping a chaos schedule's timing deterministic.
  return SplitMix64(&rng_);
}

uint64_t RetryingClient::NextToken() {
  // Separate stream: commit tokens are exactly-once keys, not jitter.
  // Unless deterministic_tokens opted in, the state mixed per-client
  // entropy at construction so no two clients draw overlapping tokens.
  return SplitMix64(&token_rng_);
}

void RetryingClient::Backoff(int attempt) {
  ++stats_.backoffs;
  int64_t bound = options_.backoff_base_us;
  for (int i = 0; i < attempt && bound < options_.backoff_max_us; ++i) {
    bound *= 2;
  }
  bound = std::min(bound, options_.backoff_max_us);
  // Full jitter: uniform in [0, bound] — decorrelates herds of retrying
  // clients without giving up the exponential envelope.
  int64_t sleep_us = bound > 0 ? static_cast<int64_t>(NextBits() %
                                                      (bound + 1))
                               : 0;
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

Status RetryingClient::EnsureConnected() {
  if (client_.connected()) return Status::OK();
  Status s = client_.Connect(options_.host, options_.port);
  if (!s.ok()) return s;
  ++stats_.reconnects;
  if (options_.op_deadline_ms > 0) {
    s = client_.SetRecvTimeoutMs(options_.op_deadline_ms);
    if (!s.ok()) {
      client_.Disconnect();
      return s;
    }
  }
  // A fresh connection is a fresh server session: the prepared-statement
  // predicates must be re-staged before the next Begin can use them.
  if (has_staged_) {
    wire::Request request;
    request.type = wire::MsgType::kPredicate;
    request.input = staged_input_;
    request.output = staged_output_;
    StatusOr<wire::Response> response = client_.Call(request);
    if (!response.ok() || response->code != StatusCode::kOk) {
      client_.Disconnect();
      return !response.ok()
                 ? response.status()
                 : Status(response->code, response->message);
    }
  }
  return Status::OK();
}

StatusOr<wire::Response> RetryingClient::RoundTrip(
    const wire::Request& request, bool* transport_failed) {
  *transport_failed = false;
  Status s = EnsureConnected();
  if (!s.ok()) {
    ++stats_.transport_errors;
    *transport_failed = true;
    return s;
  }
  StatusOr<wire::Response> response = client_.Call(request);
  if (!response.ok()) {
    // Send failure, receive deadline, torn/corrupt frame, or server-side
    // close: the stream position is unknown — only a reconnect recovers.
    ++stats_.transport_errors;
    client_.Disconnect();
    *transport_failed = true;
  }
  return response;
}

Status RetryingClient::StagePredicates(const Predicate& input,
                                       const Predicate& output) {
  staged_input_ = input;
  staged_output_ = output;
  has_staged_ = true;
  // Ship them now if connected (EnsureConnected re-ships after drops).
  if (!client_.connected()) return Status::OK();
  wire::Request request;
  request.type = wire::MsgType::kPredicate;
  request.input = input;
  request.output = output;
  bool transport_failed = false;
  StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
  if (transport_failed) return Status::OK();  // Re-staged on reconnect.
  if (!response.ok()) return response.status();
  return response->code == StatusCode::kOk
             ? Status::OK()
             : Status(response->code, response->message);
}

StatusOr<int> RetryingClient::Begin(const std::string& name,
                                    const std::vector<int>& predecessors) {
  if (!has_staged_) {
    return Status::FailedPrecondition("begin: StagePredicates first");
  }
  if (in_tx_) {
    return Status::FailedPrecondition("begin: transaction already open");
  }
  if (commit_pending_) {
    return Status::FailedPrecondition(
        "begin: previous commit verdict unresolved; Commit() to resolve "
        "it or AbandonUnresolvedCommit() to drop it");
  }
  wire::Request request;
  request.type = wire::MsgType::kBegin;
  request.name = name;
  request.predecessors = predecessors;
  request.use_staged = true;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    bool transport_failed = false;
    StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
    if (transport_failed) {
      Backoff(attempt);
      continue;
    }
    if (!response.ok()) return response.status();
    if (response->code == StatusCode::kResourceExhausted) {
      // Admission shed — the server asked for exactly this: retry later.
      Backoff(attempt);
      continue;
    }
    if (response->code != StatusCode::kOk) {
      return Status(response->code, response->message);
    }
    in_tx_ = true;
    tx_ = static_cast<int>(response->value);
    return tx_;
  }
  return Status::ResourceExhausted("begin: retry budget exhausted");
}

StatusOr<Value> RetryingClient::Read(EntityId entity) {
  if (!in_tx_) return Status::FailedPrecondition("read: no open transaction");
  wire::Request request;
  request.type = wire::MsgType::kRead;
  request.entity = entity;
  bool transport_failed = false;
  StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
  if (transport_failed) {
    // The server session died with the connection and rolled the
    // transaction back; to the caller that is an abort — restart.
    in_tx_ = false;
    return Status::Aborted("read: connection lost; transaction rolled back");
  }
  if (!response.ok()) return response.status();
  if (response->code != StatusCode::kOk) {
    if (TerminatesTransaction(response->code)) in_tx_ = false;
    return Status(response->code, response->message);
  }
  return response->value;
}

Status RetryingClient::Write(EntityId entity, Value value) {
  if (!in_tx_) return Status::FailedPrecondition("write: no open transaction");
  wire::Request request;
  request.type = wire::MsgType::kWrite;
  request.entity = entity;
  request.value = value;
  bool transport_failed = false;
  StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
  if (transport_failed) {
    in_tx_ = false;
    return Status::Aborted("write: connection lost; transaction rolled back");
  }
  if (!response.ok()) return response.status();
  if (TerminatesTransaction(response->code)) in_tx_ = false;
  return response->code == StatusCode::kOk
             ? Status::OK()
             : Status(response->code, response->message);
}

Status RetryingClient::Commit() {
  // A prior Commit that spent its budget left the verdict unknown; this
  // call resumes resolving it — same token, never a fresh one (a fresh
  // token could commit the transaction a second time).
  const bool resolving = commit_pending_;
  if (!in_tx_ && !resolving) {
    return Status::FailedPrecondition("commit: no open transaction");
  }
  uint64_t token;
  if (resolving) {
    token = last_token_;
  } else {
    token = NextToken();
    if (token == 0) token = 1;  // 0 means "no token" on the wire.
    last_token_ = token;
    ++token_counter_;
  }
  wire::Request request;
  request.type = wire::MsgType::kCommit;
  request.token = token;
  // Unlike Begin, a transport failure here does NOT mean the transaction is
  // gone — the commit may have executed with only the ack lost. Resend the
  // same token until the verdict is known; the server's token table makes
  // the resend a replay, never a second apply.
  bool sent_once = resolving;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    bool was_resend = sent_once;
    if (was_resend) ++stats_.commit_resends;
    bool transport_failed = false;
    StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
    sent_once = true;
    if (transport_failed) {
      Backoff(attempt);
      continue;
    }
    if (!response.ok()) return response.status();
    switch (response->code) {
      case StatusCode::kOk:
        // Committed exactly once. When the OK answers a resend it came from
        // the server's token table (the value echoes the original tx id).
        if (was_resend) ++stats_.commit_replays;
        in_tx_ = false;
        commit_pending_ = false;
        return Status::OK();
      case StatusCode::kResourceExhausted:
        // Our earlier send is still executing server-side (token pending),
        // or admission pushed back — either way: ask again shortly.
        Backoff(attempt);
        continue;
      case StatusCode::kFailedPrecondition:
        // A reconnected session with no open transaction and no committed
        // token: the commit never happened (had it committed, the token
        // table would have answered OK; had it still been running, we'd
        // have seen kResourceExhausted).
        in_tx_ = false;
        commit_pending_ = false;
        return Status::Aborted("commit: transaction lost; not committed");
      default:
        in_tx_ = false;
        commit_pending_ = false;
        return Status(response->code, response->message);
    }
  }
  // Verdict still unknown: park in the commit-pending state instead of
  // discarding the token — the commit may or may not have applied, and
  // only a resend of this token can tell. The next Commit() resumes.
  in_tx_ = false;
  commit_pending_ = true;
  return Status::ResourceExhausted(
      "commit: verdict unresolved; retry budget spent — call Commit() "
      "again to resolve");
}

Status RetryingClient::Abort() {
  if (commit_pending_) {
    return Status::FailedPrecondition(
        "abort: commit verdict unresolved; Commit() to resolve it or "
        "AbandonUnresolvedCommit() to drop it");
  }
  if (!in_tx_) return Status::OK();
  wire::Request request;
  request.type = wire::MsgType::kAbort;
  bool transport_failed = false;
  StatusOr<wire::Response> response = RoundTrip(request, &transport_failed);
  in_tx_ = false;
  if (transport_failed) return Status::OK();  // Connection loss aborts too.
  if (!response.ok()) return response.status();
  return response->code == StatusCode::kOk
             ? Status::OK()
             : Status(response->code, response->message);
}

}  // namespace nonserial
