#ifndef NONSERIAL_SERVER_SERVER_H_
#define NONSERIAL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "server/wire.h"

namespace nonserial {

struct ServerOptions {
  /// Listen address. Port 0 binds an ephemeral port (read it back with
  /// port() after Start — the test/bench pattern).
  std::string host = "127.0.0.1";
  int port = 0;
  /// Fixed worker pool executing session requests. A worker parks for the
  /// duration of a blocked protocol wait, so size this above the expected
  /// number of concurrently blocked sessions (and give the engine a
  /// max_blocked_us bound so an abandoned wait cannot pin a worker
  /// forever).
  int num_workers = 4;
  /// Bound on queued-but-unexecuted requests per connection. Overflow is
  /// shed with kResourceExhausted (retry later) instead of queued — a slow
  /// session back-pressures its own client, never the whole server.
  size_t max_queue_depth = 64;
  /// Session lease: a connection idle (no frame arrival, no queued or
  /// running request) for this long is reclaimed — the connection closes,
  /// its session's in-flight transaction rolls back, and the admission slot
  /// frees. Protects a long-lived server from abandoned clients (half-open
  /// TCP peers, crashed processes) pinning transactions forever. Counted as
  /// server_lease_expired. 0 disables leases.
  int64_t lease_ms = 0;
};

/// TCP front end for one Engine: accepts connections, speaks the framed
/// wire protocol (server/wire.h), and maps each connection to one
/// engine Session — BEGIN/READ/WRITE/PREDICATE/COMMIT/ABORT/PING frames
/// drive the session's transaction lifecycle, responses carry the Status
/// vocabulary back (kResourceExhausted = retry later).
///
/// Threading model: one epoll event-loop thread owns the listener, all
/// connection reads, and frame parsing; decoded requests go to the
/// connection's FIFO queue and a fixed ThreadPool executes them. Per
/// connection at most one worker runs at a time (the session contract:
/// one thread at a time), so requests of one session execute in arrival
/// order while different sessions run concurrently. Workers write
/// responses directly to the socket under a per-connection write lock.
///
/// Backpressure has three layers, all surfaced through ProtocolMetrics:
///  - admission control at Begin (engine max_inflight_tx / WAL backlog,
///    server.accepted / server.shed, server.inflight histogram);
///  - per-connection queue bounds (max_queue_depth, server.queue_depth
///    histogram, overflow counted in server.shed);
///  - malformed frames cost exactly their own connection
///    (server.wire_errors), never the process.
///
/// Teardown: Stop() closes the listener and every connection and drains
/// the workers. Shut the engine down FIRST (Engine::Shutdown or
/// ScopedEngineShutdown) when sessions may be parked mid-protocol — the
/// engine wake-up is what unblocks them; Stop alone cannot interrupt a
/// parked session.
class SessionServer {
 public:
  SessionServer(Engine* engine, ServerOptions options);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Binds, listens, and starts the event loop + workers.
  Status Start();

  /// Stops accepting, closes every connection, joins the event loop, and
  /// drains the workers. Idempotent.
  void Stop();

  /// The bound port (valid after Start; useful with port 0).
  int port() const { return port_; }

  /// Connections currently open (diagnostics).
  int active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state. The event-loop thread owns fd reads, inbuf, and
  /// the connections_ map entry; mu guards the request queue and the
  /// running flag; the owning worker (at most one, enforced by `running`)
  /// owns the session and the staged predicates.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();

    int fd;
    std::unique_ptr<Session> session;
    std::string inbuf;
    // Prepared-statement predicates staged by kPredicate for kBegin.
    Predicate staged_input;
    Predicate staged_output;
    bool has_staged = false;

    std::mutex mu;
    std::deque<wire::Request> queue;
    bool running = false;  ///< A worker currently owns this connection.

    std::mutex write_mu;
    std::atomic<bool> closed{false};

    /// Lease clock: microseconds (steady) of the last frame arrival or
    /// request completion. Written by the event loop and workers, read by
    /// the event loop's lease sweep — hence atomic.
    std::atomic<int64_t> last_activity_us{0};
  };

  void EventLoop();
  void AcceptPending();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Worker entry: drains the connection's queue one request at a time.
  void PumpQueue(std::shared_ptr<Connection> conn);
  wire::Response Execute(Connection* conn, const wire::Request& request);
  /// Sends one encoded frame (handles short writes; EAGAIN polls out). The
  /// net.* failpoint catalog lives here: drop/delay/corrupt/partial-write
  /// faults apply to any outbound frame, deterministically parameterized by
  /// the failpoint registry's DrawBits stream.
  void SendFrame(Connection* conn, const std::string& frame);
  /// Half-closes the socket and drops the map entry; the Connection object
  /// (and its session) dies when the last worker reference does. Event-loop
  /// thread only.
  void CloseConnection(int fd);
  /// Worker-side teardown: marks the connection dead and half-closes the
  /// socket; the event loop reaps the map entry on the resulting HUP.
  void AbandonConnection(Connection* conn);
  /// Closes every idle connection whose lease expired (lease_ms > 0).
  /// Event-loop thread only.
  void ReclaimExpiredLeases();
  /// epoll timeout until the nearest lease deadline (-1 when leases are
  /// off or no connection is expirable).
  int LeaseTimeoutMs() const;

  Engine* engine_;
  ServerOptions options_;
  ProtocolMetrics* metrics_;  ///< engine_->metrics(); may be null.

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  /// Stop()/teardown wake-up: an eventfd in the epoll set. One write pops
  /// the event loop out of epoll_wait immediately (no fixed tick) and lets
  /// a blocked SendFrame's poll() observe shutdown instead of timing out.
  int wake_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};
  bool started_ = false;
  std::thread event_thread_;
  std::unique_ptr<ThreadPool> workers_;
  /// Event-loop-thread-owned (plus final cleanup after the loop joins).
  std::map<int, std::shared_ptr<Connection>> connections_;
};

}  // namespace nonserial

#endif  // NONSERIAL_SERVER_SERVER_H_
