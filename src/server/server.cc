#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrCat(what, ": ", std::strerror(errno)));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SessionServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

SessionServer::SessionServer(Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      metrics_(engine->metrics()) {}

SessionServer::~SessionServer() { Stop(); }

Status SessionServer::Start() {
  NONSERIAL_CHECK(!started_) << "SessionServer::Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("bad listen host: ", options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) < 0) {
    return Errno("epoll_ctl(wakeup)");
  }

  workers_ =
      std::make_unique<ThreadPool>(std::max(1, options_.num_workers));
  event_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  return Status::OK();
}

void SessionServer::Stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // One eventfd tick pops the event loop out of epoll_wait immediately —
    // and stays readable for every worker poll()ing a blocked send, so
    // teardown latency is bounded by work in flight, not by any timer.
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (event_thread_.joinable()) event_thread_.join();
  // Drain in-flight request handlers (the pool destructor runs the queue
  // dry and joins). Connections die with their last worker reference.
  workers_.reset();
  connections_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = listen_fd_ = wake_fd_ = -1;
  started_ = false;
  stopping_.store(false);
}

void SessionServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    // No fixed tick: the eventfd wake makes Stop() latency work-bound, so
    // the loop may sleep until the next readable fd — or, under leases,
    // until the nearest lease deadline.
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, LeaseTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // Stop() — outer loop exits.
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(fd);
        continue;
      }
      // Copy the shared_ptr: HandleReadable may CloseConnection, which
      // erases the map entry a bare reference would dangle into.
      std::shared_ptr<Connection> conn = it->second;
      HandleReadable(conn);
    }
    ReclaimExpiredLeases();
  }
  // Half-close every connection so blocked client reads fail fast; the
  // Connection objects (and their sessions) are released in Stop() once
  // the workers drain.
  for (auto& [fd, conn] : connections_) {
    conn->closed.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
  }
}

void SessionServer::AcceptPending() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN — drained.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    conn->session = engine_->OpenSession();
    conn->last_activity_us.store(NowUs(), std::memory_order_relaxed);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      continue;  // conn closes via destructor.
    }
    connections_.emplace(fd, std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  conn->last_activity_us.store(NowUs(), std::memory_order_relaxed);
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error): tear the connection down.
    CloseConnection(conn->fd);
    return;
  }

  // Parse every complete frame in the buffer.
  size_t consumed = 0;
  bool fatal = false;
  while (consumed < conn->inbuf.size()) {
    wire::DecodedFrame frame = wire::DecodeFrame(
        conn->inbuf.data() + consumed, conn->inbuf.size() - consumed);
    if (frame.status == wire::FrameStatus::kNeedMore) break;
    if (frame.status == wire::FrameStatus::kCorrupt) {
      // A corrupt frame poisons the stream (framing is lost): report once,
      // then drop exactly this connection. Other sessions are untouched.
      if (metrics_ != nullptr) metrics_->server_wire_errors.Add();
      wire::Response response;
      response.code = StatusCode::kInvalidArgument;
      response.message = StrCat("wire: ", frame.error);
      SendFrame(conn.get(), wire::EncodeResponse(response));
      fatal = true;
      break;
    }
    consumed += frame.frame_bytes;

    wire::Request request;
    Status decoded = wire::DecodeRequest(frame.type, frame.payload, &request);
    if (!decoded.ok()) {
      // CRC-valid but semantically malformed: the framing survives, so the
      // error is answerable per request without closing the stream.
      if (metrics_ != nullptr) metrics_->server_wire_errors.Add();
      wire::Response response;
      response.code = decoded.code();
      response.message = decoded.message();
      SendFrame(conn.get(), wire::EncodeResponse(response));
      continue;
    }

    bool spawn = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->queue.size() >= options_.max_queue_depth) {
        // Queue overflow: shed rather than buffer without bound. The
        // client retries later; counted with the admission sheds.
        if (metrics_ != nullptr) metrics_->server_shed.Add();
        wire::Response response;
        response.code = StatusCode::kResourceExhausted;
        response.message = "server: request queue full; retry later";
        SendFrame(conn.get(), wire::EncodeResponse(response));
        continue;
      }
      conn->queue.push_back(std::move(request));
      if (metrics_ != nullptr) {
        metrics_->server_queue_depth.Record(
            static_cast<int64_t>(conn->queue.size()));
      }
      if (!conn->running) {
        conn->running = true;
        spawn = true;
      }
    }
    if (spawn) {
      std::shared_ptr<Connection> owned = conn;
      workers_->Submit([this, owned] { PumpQueue(owned); });
    }
  }
  conn->inbuf.erase(0, consumed);
  if (fatal) CloseConnection(conn->fd);
}

void SessionServer::PumpQueue(std::shared_ptr<Connection> conn) {
  for (;;) {
    wire::Request request;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->queue.empty()) {
        conn->running = false;
        // The lease clock restarts when the last queued request finishes,
        // not when it arrived — a long-running request is activity.
        conn->last_activity_us.store(NowUs(), std::memory_order_relaxed);
        return;
      }
      request = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    if (metrics_ != nullptr) metrics_->server_requests.Add();
    wire::Response response = Execute(conn.get(), request);
    bool is_commit = request.type == wire::MsgType::kCommit;
    // The lost-ack fault the idempotency token exists for: the commit
    // applied (and is durable), but the connection dies before the client
    // sees the verdict. The client's resend of the same token must be
    // answered from the token table, not re-executed.
    if (is_commit && NONSERIAL_FAILPOINT("net.disconnect_before_commit_ack")) {
      AbandonConnection(conn.get());
      continue;
    }
    if (!conn->closed.load(std::memory_order_acquire)) {
      SendFrame(conn.get(), wire::EncodeResponse(response));
    }
    // Ack delivered, then the connection dies: the client reconnects but
    // must not re-apply (its commit already answered).
    if (is_commit && NONSERIAL_FAILPOINT("net.disconnect_after_commit_ack")) {
      AbandonConnection(conn.get());
    }
  }
}

wire::Response SessionServer::Execute(Connection* conn,
                                      const wire::Request& request) {
  Session* session = conn->session.get();
  wire::Response response;
  auto fill = [&response](const Status& status) {
    response.code = status.code();
    if (!status.ok()) response.message = status.message();
  };
  switch (request.type) {
    case wire::MsgType::kPredicate:
      conn->staged_input = request.input;
      conn->staged_output = request.output;
      conn->has_staged = true;
      break;
    case wire::MsgType::kBegin: {
      engine::TxSpec spec;
      spec.name = request.name;
      spec.predecessors = request.predecessors;
      if (request.use_staged) {
        if (!conn->has_staged) {
          fill(Status::FailedPrecondition(
              "begin: no staged predicates on this session"));
          break;
        }
        spec.input = conn->staged_input;
        spec.output = conn->staged_output;
      } else {
        spec.input = request.input;
        spec.output = request.output;
      }
      fill(session->Begin(spec));
      response.value = session->tx();
      break;
    }
    case wire::MsgType::kRead: {
      StatusOr<Value> value = session->Read(request.entity);
      fill(value.status());
      if (value.ok()) response.value = *value;
      break;
    }
    case wire::MsgType::kWrite:
      fill(session->Write(request.entity, request.value));
      break;
    case wire::MsgType::kCommit: {
      if (request.token != 0) {
        int committed_tx = -1;
        Engine::TokenState state =
            engine_->LookupCommitToken(request.token, &committed_tx);
        if (state == Engine::TokenState::kCommitted) {
          // Replay of a commit that already happened (a resend after a lost
          // ack): answer the original verdict. If the reconnecting client
          // re-ran the transaction body first, that open attempt must not
          // double-apply — roll it back before answering.
          session->Abort();
          if (metrics_ != nullptr) metrics_->server_retries.Add();
          response.code = StatusCode::kOk;
          response.value = committed_tx;
          break;
        }
        if (state == Engine::TokenState::kPending &&
            !session->in_transaction()) {
          // Another connection's commit with this token is mid-flight;
          // its verdict isn't known yet. Retry later. (Advisory only:
          // Session::Commit claims the token atomically, so two commits
          // racing past this check still cannot both execute.)
          fill(Status::ResourceExhausted(
              "commit: token already in flight; retry later"));
          break;
        }
      }
      fill(session->Commit(request.token));
      break;
    }
    case wire::MsgType::kAbort:
      fill(session->Abort());
      break;
    case wire::MsgType::kPing:
      response.value = request.value;
      break;
    case wire::MsgType::kResponse:
      fill(Status::InvalidArgument("response frame sent as a request"));
      break;
  }
  return response;
}

void SessionServer::SendFrame(Connection* conn, const std::string& frame) {
  // The net.* fault catalog, deterministic via the registry's seeded
  // DrawBits stream (same discipline as the wal.* media faults): each
  // armed point damages this outbound frame the way a faulty network
  // would, and every damage parameter replays from the schedule seed.
  FailpointRegistry& fp = FailpointRegistry::Global();
  if (NONSERIAL_FAILPOINT("net.drop_frame")) return;  // Swallowed in flight.
  if (NONSERIAL_FAILPOINT("net.delay")) {
    // Bounded stall (0..2ms): reorders this response against other
    // connections' traffic and widens client-timeout races.
    std::this_thread::sleep_for(
        std::chrono::microseconds(fp.DrawBits() % 2000));
  }
  const std::string* out = &frame;
  std::string corrupted;
  if (!frame.empty() && NONSERIAL_FAILPOINT("net.corrupt_frame")) {
    // One bit flips in flight; the client's CRC check must reject the
    // frame (and the client treats the stream as poisoned).
    corrupted = frame;
    uint64_t bits = fp.DrawBits();
    corrupted[bits % corrupted.size()] ^=
        static_cast<char>(1u << ((bits >> 32) % 8));
    out = &corrupted;
  }
  size_t limit = out->size();
  bool tear_after = false;
  if (out->size() > 1 && NONSERIAL_FAILPOINT("net.partial_write")) {
    // The connection dies mid-frame: a strict prefix lands, then the
    // socket closes. The client sees a torn frame + EOF.
    limit = 1 + fp.DrawBits() % (out->size() - 1);
    tear_after = true;
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t sent = 0;
  while (sent < limit) {
    ssize_t n =
        ::send(conn->fd, out->data() + sent, limit - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Wait for writability OR the shutdown wake (the eventfd stays
      // readable once Stop() posts it), so a worker blocked on a stalled
      // peer cannot delay teardown by a timeout tick.
      pollfd pfds[2] = {{conn->fd, POLLOUT, 0}, {wake_fd_, POLLIN, 0}};
      ::poll(pfds, 2, /*timeout_ms=*/1000);
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // Peer gone; the reader side will reap the connection.
  }
  if (tear_after) AbandonConnection(conn);
}

void SessionServer::AbandonConnection(Connection* conn) {
  // Worker-side: no access to connections_ (event-loop owned). Marking
  // closed + half-closing makes the event loop reap the entry on the HUP.
  conn->closed.store(true, std::memory_order_release);
  ::shutdown(conn->fd, SHUT_RDWR);
}

int SessionServer::LeaseTimeoutMs() const {
  if (options_.lease_ms <= 0) return -1;
  if (connections_.empty()) return -1;  // Accepts wake epoll anyway.
  int64_t now = NowUs();
  int64_t lease_us = options_.lease_ms * 1000;
  int64_t nearest_us = lease_us;
  for (const auto& [fd, conn] : connections_) {
    int64_t expires =
        conn->last_activity_us.load(std::memory_order_relaxed) + lease_us -
        now;
    nearest_us = std::min(nearest_us, expires);
  }
  // Round up so the wake lands at-or-after the deadline; floor at 1ms.
  return static_cast<int>(std::max<int64_t>(1, (nearest_us + 999) / 1000));
}

void SessionServer::ReclaimExpiredLeases() {
  if (options_.lease_ms <= 0) return;
  int64_t now = NowUs();
  int64_t lease_us = options_.lease_ms * 1000;
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    {
      // A queued or running request is activity in progress; only sessions
      // idle at the protocol level are reclaimable.
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->running || !conn->queue.empty()) continue;
    }
    if (now - conn->last_activity_us.load(std::memory_order_relaxed) >=
        lease_us) {
      expired.push_back(fd);
    }
  }
  for (int fd : expired) {
    if (metrics_ != nullptr) metrics_->server_lease_expired.Add();
    // The map entry goes now; the Connection object — and with it the
    // session, whose destructor rolls back any in-flight transaction and
    // releases the admission slot — dies with its last reference.
    CloseConnection(fd);
  }
}

void SessionServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second->closed.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Half-close now (wakes any peer), full close when the last reference —
  // possibly a worker mid-request — drops the Connection. The session
  // aborts any open transaction in its destructor.
  ::shutdown(fd, SHUT_RDWR);
  connections_.erase(it);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace nonserial
