#ifndef NONSERIAL_SERVER_WIRE_H_
#define NONSERIAL_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/api.h"
#include "predicate/predicate.h"
#include "predicate/value.h"

namespace nonserial {
namespace wire {

/// On-wire layout of the session protocol. A connection carries a sequence
/// of length-prefixed, CRC-protected frames (the same framing discipline as
/// the write-ahead log's media format, storage/wal_format.h — one codec
/// idiom across the process boundary and the storage boundary):
///
///   frame: magic u32 | type u8 | len u32 | crc u32 | payload
///
/// The CRC32 (IEEE 802.3, reused from wal_format) covers type, len, and the
/// payload, so any corrupted byte outside the magic fails the check; a
/// corrupted magic fails the magic check instead. All integers are
/// little-endian. Requests and responses use the same frame shape; the
/// type byte's high bit marks responses.
///
/// The decoder is defensive by construction: every read is bounds-checked,
/// a length field is capped before any allocation, and no input byte
/// sequence may do anything worse than yield kCorrupt — a malformed client
/// costs one connection, never the server.

inline constexpr uint32_t kFrameMagic = 0x5652534Eu;  // "NSRV"
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;
/// Upper bound on a sane payload (guards length-field corruption from
/// driving allocations; predicates over the repo's workloads are tiny).
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/// Request frame types (client -> server).
enum class MsgType : uint8_t {
  kBegin = 0x01,      ///< Start a transaction (inline or staged predicates).
  kRead = 0x02,       ///< Read one entity.
  kWrite = 0x03,      ///< Write one entity.
  kPredicate = 0x04,  ///< Stage input/output predicates for the next BEGIN
                      ///< (prepared-statement style; survives aborts, so a
                      ///< retry loop sends the spec once).
  kCommit = 0x05,
  kAbort = 0x06,
  kPing = 0x07,       ///< Liveness probe; echoes its value.
  kResponse = 0x80,   ///< Server -> client (high bit set).
};

/// One decoded client request.
struct Request {
  MsgType type = MsgType::kPing;
  // kBegin.
  std::string name;
  std::vector<int> predecessors;
  bool use_staged = false;  ///< Take I_t/O_t from the staged kPredicate.
  Predicate input;          ///< kBegin (inline) and kPredicate.
  Predicate output;
  // kRead / kWrite.
  EntityId entity = kInvalidEntity;
  Value value = 0;  ///< kWrite payload; kPing echo token.
  // kCommit: client-generated idempotency token (0 = none, legacy clients).
  // With a nonzero token the engine persists it through the WAL, so a
  // resent COMMIT after a lost ack returns the original verdict instead of
  // double-applying (exactly-once across reconnects).
  uint64_t token = 0;
};

/// One server response. `code` is the engine's Status vocabulary;
/// kResourceExhausted is the wire-level RETRY_LATER (admission shed).
struct Response {
  StatusCode code = StatusCode::kOk;
  Value value = 0;  ///< kRead result; kBegin transaction id; kPing echo.
  std::string message;
};

/// Serializes one frame (header + payload).
std::string EncodeFrame(MsgType type, const std::string& payload);

std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

enum class FrameStatus : uint8_t {
  kOk,         ///< Frame decoded; `frame_bytes` consumed.
  kNeedMore,   ///< The bytes end mid-frame; read more and retry.
  kCorrupt     ///< Bad magic, CRC mismatch, or oversized length field.
};

struct DecodedFrame {
  FrameStatus status = FrameStatus::kOk;
  size_t frame_bytes = 0;  ///< Total encoded size (header + payload).
  MsgType type = MsgType::kPing;
  std::string payload;
  std::string error;  ///< When kCorrupt: what failed (diagnostics).
};

/// Decodes the frame starting at data[0]; `len` bytes are available.
DecodedFrame DecodeFrame(const char* data, size_t len);

/// Decodes a request payload for `type`. InvalidArgument on any malformed
/// or trailing bytes — a CRC-valid frame can still carry a hostile body.
Status DecodeRequest(MsgType type, const std::string& payload, Request* out);

/// Decodes a response payload.
Status DecodeResponse(const std::string& payload, Response* out);

}  // namespace wire
}  // namespace nonserial

#endif  // NONSERIAL_SERVER_WIRE_H_
