#ifndef NONSERIAL_SERVER_CLIENT_H_
#define NONSERIAL_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"
#include "predicate/value.h"
#include "server/wire.h"

namespace nonserial {

/// Blocking C++ client for the session wire protocol (server/wire.h): one
/// TCP connection == one server-side Session. Calls mirror the Session API
/// — Begin/Read/Write/Commit/Abort returning the same Status vocabulary
/// (kAborted: retry the transaction; kResourceExhausted: shed, retry
/// later) — so a workload loop written against Session ports to the wire
/// by swapping the handle type.
///
/// Not thread-safe: one thread per client (matching the per-session
/// single-thread contract on the server side).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Stages I_t/O_t server-side for subsequent BeginStaged calls
  /// (prepared-statement style — a retry loop ships its predicates once).
  Status StagePredicates(const Predicate& input, const Predicate& output);

  /// Starts a transaction with inline predicates. Returns the server-side
  /// transaction id.
  StatusOr<int> Begin(const std::string& name,
                      const std::vector<int>& predecessors,
                      const Predicate& input, const Predicate& output);

  /// Starts a transaction using the staged predicates.
  StatusOr<int> BeginStaged(const std::string& name,
                            const std::vector<int>& predecessors);

  StatusOr<Value> Read(EntityId entity);
  Status Write(EntityId entity, Value value);
  Status Commit();
  Status Abort();

  /// Liveness probe; returns the echoed token.
  StatusOr<Value> Ping(Value token);

  /// One framed round trip (escape hatch for tests and the bench).
  StatusOr<wire::Response> Call(const wire::Request& request);

  /// Sends raw bytes as-is — the fuzz tests' hostile-client entry point.
  Status SendRaw(const std::string& bytes);

  /// Reads one response frame (pairs with SendRaw).
  StatusOr<wire::Response> ReadResponse();

 private:
  Status SendAll(const std::string& bytes);

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace nonserial

#endif  // NONSERIAL_SERVER_CLIENT_H_
