#ifndef NONSERIAL_SERVER_CLIENT_H_
#define NONSERIAL_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/predicate.h"
#include "predicate/value.h"
#include "server/wire.h"

namespace nonserial {

/// Blocking C++ client for the session wire protocol (server/wire.h): one
/// TCP connection == one server-side Session. Calls mirror the Session API
/// — Begin/Read/Write/Commit/Abort returning the same Status vocabulary
/// (kAborted: retry the transaction; kResourceExhausted: shed, retry
/// later) — so a workload loop written against Session ports to the wire
/// by swapping the handle type.
///
/// Not thread-safe: one thread per client (matching the per-session
/// single-thread contract on the server side).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Bounds every subsequent receive: a response not arriving within the
  /// deadline fails the call with a transport error (the stream position is
  /// then unknown — disconnect and reconnect). 0 restores blocking reads.
  /// Call after Connect; the setting does not survive reconnects.
  Status SetRecvTimeoutMs(int64_t ms);

  /// Stages I_t/O_t server-side for subsequent BeginStaged calls
  /// (prepared-statement style — a retry loop ships its predicates once).
  Status StagePredicates(const Predicate& input, const Predicate& output);

  /// Starts a transaction with inline predicates. Returns the server-side
  /// transaction id.
  StatusOr<int> Begin(const std::string& name,
                      const std::vector<int>& predecessors,
                      const Predicate& input, const Predicate& output);

  /// Starts a transaction using the staged predicates.
  StatusOr<int> BeginStaged(const std::string& name,
                            const std::vector<int>& predecessors);

  StatusOr<Value> Read(EntityId entity);
  Status Write(EntityId entity, Value value);
  /// A nonzero `token` (client-generated idempotency token) makes the
  /// commit exactly-once across reconnects: the server persists it with the
  /// commit record, and a resend of the same token after a lost ack is
  /// answered with the original verdict instead of re-executing.
  Status Commit(uint64_t token = 0);
  Status Abort();

  /// Liveness probe; returns the echoed token.
  StatusOr<Value> Ping(Value token);

  /// One framed round trip (escape hatch for tests and the bench).
  StatusOr<wire::Response> Call(const wire::Request& request);

  /// Sends raw bytes as-is — the fuzz tests' hostile-client entry point.
  Status SendRaw(const std::string& bytes);

  /// Reads one response frame (pairs with SendRaw).
  StatusOr<wire::Response> ReadResponse();

 private:
  Status SendAll(const std::string& bytes);

  int fd_ = -1;
  std::string inbuf_;
};

/// Knobs for the fault-tolerant session below.
struct RetryingClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Per-round-trip receive deadline: a response not arriving in time is a
  /// transport failure (reconnect + retry or abort). Guards against dropped
  /// response frames parking the client forever.
  int64_t op_deadline_ms = 2'000;
  /// Exponential backoff between retry attempts, with deterministic jitter
  /// drawn from `seed` (full jitter: each sleep is uniform in [0, bound],
  /// bound doubling from base to max).
  int64_t backoff_base_us = 200;
  int64_t backoff_max_us = 50'000;
  /// Bound on connect/shed/in-flight retries per operation before giving
  /// up with kResourceExhausted ("verdict unresolved; retry later"). A
  /// tokenized COMMIT that gives up this way stays resolvable: the client
  /// parks in a commit-pending state and the next Commit() resends the
  /// same token, which the server's token table answers with the original
  /// verdict.
  int max_attempts = 10;
  /// Seeds the backoff jitter (and, with `deterministic_tokens`, the
  /// commit-token stream), so a chaos schedule involving this client
  /// replays deterministically.
  uint64_t seed = 1;
  /// Draw commit tokens purely from `seed` instead of mixing in
  /// per-process entropy. The server's token table is keyed by token
  /// alone, so two clients drawing overlapping streams would answer one
  /// client's commit with the other's verdict — silently losing writes.
  /// Leave this off (the default mixes fresh entropy per client) unless a
  /// replay harness owns the seed space and guarantees each concurrent
  /// client a distinct seed.
  bool deterministic_tokens = false;
};

/// A fault-tolerant session over the wire protocol: wraps Client with
/// transparent reconnect, deadline + jittered exponential backoff, staged
/// predicates re-shipped after every reconnect, and exactly-once COMMIT via
/// client-generated idempotency tokens.
///
/// Transaction semantics under faults: any transport failure while a
/// transaction is open (except during COMMIT) loses the server session and
/// with it the transaction — the call returns kAborted and the caller
/// restarts the transaction, exactly as after a protocol abort. COMMIT is
/// the special case: once sent, it may have executed even if the ack was
/// lost, so the client resends the *same token* across reconnects until it
/// learns the original verdict (OK from the server's token table = the one
/// durable commit; kFailedPrecondition with no open transaction = the
/// commit never happened → kAborted).
///
/// Not thread-safe (same one-thread contract as Client / Session).
class RetryingClient {
 public:
  explicit RetryingClient(RetryingClientOptions options);

  /// Fault counters (diagnostics; the wire-chaos harness asserts on them).
  struct Stats {
    int64_t reconnects = 0;      ///< Successful re-establishments.
    int64_t transport_errors = 0;///< Failed round trips (any cause).
    int64_t backoffs = 0;        ///< Sleeps taken between attempts.
    int64_t commit_resends = 0;  ///< COMMIT retransmissions (same token).
    int64_t commit_replays = 0;  ///< Verdicts answered from the server's
                                 ///< token table (value echoed the tx id of
                                 ///< the original commit).
  };

  /// Declares the predicates used by every subsequent Begin (re-staged
  /// automatically after reconnects). Connects lazily.
  Status StagePredicates(const Predicate& input, const Predicate& output);

  /// Starts a transaction with the staged predicates. Retries transport
  /// failures and admission sheds with backoff. Returns the server tx id.
  StatusOr<int> Begin(const std::string& name,
                      const std::vector<int>& predecessors);

  StatusOr<Value> Read(EntityId entity);
  Status Write(EntityId entity, Value value);

  /// Exactly-once commit: generates a fresh token for this transaction and
  /// resends it across reconnects until the verdict is known. OK means the
  /// transaction committed exactly once (possibly answered from the token
  /// table); kAborted means it did not commit. kResourceExhausted means the
  /// retry budget ran out with the verdict still unknown — the client parks
  /// in a commit-pending state (commit_pending()) and the next Commit()
  /// call resumes resolution by resending the *same* token.
  Status Commit();

  /// While commit_pending(), refuses with kFailedPrecondition — the open
  /// verdict must be resolved (Commit()) or explicitly abandoned first.
  Status Abort();

  /// True after Commit() returned kResourceExhausted with the verdict
  /// unknown. Read/Write/Begin/Abort are refused until Commit() resolves
  /// it or AbandonUnresolvedCommit() drops it.
  bool commit_pending() const { return commit_pending_; }

  /// Gives up on learning the pending commit's verdict (it may or may not
  /// have applied). last_commit_token() still identifies it, so a caller
  /// that records tokens can classify the outcome later against the
  /// durable token table (the wire-chaos harness does exactly this).
  void AbandonUnresolvedCommit() { commit_pending_ = false; }

  /// Server-side id of the open (or most recently begun) transaction.
  int tx() const { return tx_; }
  bool in_transaction() const { return in_tx_; }
  /// Token used by the most recent Commit (diagnostics).
  uint64_t last_commit_token() const { return last_token_; }
  const Stats& stats() const { return stats_; }

  void Disconnect() { client_.Disconnect(); }

 private:
  /// Connects (if needed) and re-stages predicates. Counts reconnects.
  Status EnsureConnected();
  /// One round trip with transport-failure handling: on failure the
  /// connection is dropped and `*transport_failed` set.
  StatusOr<wire::Response> RoundTrip(const wire::Request& request,
                                     bool* transport_failed);
  /// Jittered exponential backoff for attempt number `attempt` (0-based).
  void Backoff(int attempt);
  uint64_t NextBits();
  uint64_t NextToken();

  RetryingClientOptions options_;
  Client client_;
  uint64_t rng_;
  uint64_t token_rng_;
  Predicate staged_input_;
  Predicate staged_output_;
  bool has_staged_ = false;
  bool in_tx_ = false;
  bool commit_pending_ = false;
  int tx_ = -1;
  uint64_t last_token_ = 0;
  uint64_t token_counter_ = 0;
  Stats stats_;
};

}  // namespace nonserial

#endif  // NONSERIAL_SERVER_CLIENT_H_
