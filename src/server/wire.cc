#include "server/wire.h"

#include <cstring>

#include "storage/wal_format.h"

namespace nonserial {
namespace wire {

namespace {

// --- primitive little-endian writers/readers -----------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }

void PutI64(std::string* out, int64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a payload. Every accessor reports failure
/// instead of reading past the end — the decoder's defensiveness lives
/// here, in one place.
class Reader {
 public:
  Reader(const char* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > len_) return Fail();
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > len_) return Fail();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    *v = out;
    pos_ += 4;
    return true;
  }

  bool I32(int32_t* v) {
    uint32_t raw = 0;
    if (!U32(&raw)) return false;
    *v = static_cast<int32_t>(raw);
    return true;
  }

  bool I64(int64_t* v) {
    if (pos_ + 8 > len_) return Fail();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    *v = static_cast<int64_t>(out);
    pos_ += 8;
    return true;
  }

  bool String(std::string* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > len_ - pos_) return Fail();  // pos_ <= len_ always holds.
    v->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- predicate encoding ---------------------------------------------------

void PutTerm(std::string* out, const Term& term) {
  PutU8(out, term.is_entity ? 1 : 0);
  PutI32(out, term.entity);
  PutI64(out, term.constant);
}

bool GetTerm(Reader* r, Term* term) {
  uint8_t is_entity = 0;
  int32_t entity = 0;
  int64_t constant = 0;
  if (!r->U8(&is_entity) || !r->I32(&entity) || !r->I64(&constant)) {
    return false;
  }
  if (is_entity > 1) return false;
  term->is_entity = is_entity != 0;
  term->entity = entity;
  term->constant = constant;
  return true;
}

void PutPredicate(std::string* out, const Predicate& predicate) {
  PutU32(out, static_cast<uint32_t>(predicate.clauses().size()));
  for (const Clause& clause : predicate.clauses()) {
    PutU32(out, static_cast<uint32_t>(clause.atoms().size()));
    for (const Atom& atom : clause.atoms()) {
      PutTerm(out, atom.lhs);
      PutU8(out, static_cast<uint8_t>(atom.op));
      PutTerm(out, atom.rhs);
    }
  }
}

bool GetPredicate(Reader* r, Predicate* predicate) {
  uint32_t num_clauses = 0;
  if (!r->U32(&num_clauses)) return false;
  // An atom costs >= 27 encoded bytes; a clause count larger than the
  // payload could carry is corruption, not a big predicate.
  if (num_clauses > kMaxPayloadBytes) return false;
  std::vector<Clause> clauses;
  clauses.reserve(num_clauses);
  for (uint32_t c = 0; c < num_clauses; ++c) {
    uint32_t num_atoms = 0;
    if (!r->U32(&num_atoms)) return false;
    if (num_atoms > kMaxPayloadBytes) return false;
    std::vector<Atom> atoms;
    atoms.reserve(num_atoms);
    for (uint32_t a = 0; a < num_atoms; ++a) {
      Atom atom;
      uint8_t op = 0;
      if (!GetTerm(r, &atom.lhs) || !r->U8(&op) || !GetTerm(r, &atom.rhs)) {
        return false;
      }
      if (op > static_cast<uint8_t>(CompareOp::kGe)) return false;
      atom.op = static_cast<CompareOp>(op);
      atoms.push_back(std::move(atom));
    }
    clauses.emplace_back(std::move(atoms));
  }
  *predicate = Predicate(std::move(clauses));
  return true;
}

uint32_t FrameCrc(uint8_t type, const std::string& payload) {
  // Mirror wal_format's frame CRC discipline: cover the type byte, the
  // length field, and the payload.
  uint8_t prefix[5];
  prefix[0] = type;
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(prefix + 1, &len, 4);
  uint32_t crc = wal_format::Crc32(prefix, sizeof(prefix));
  return wal_format::Crc32(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(), crc);
}

}  // namespace

std::string EncodeFrame(MsgType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kFrameMagic);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, FrameCrc(static_cast<uint8_t>(type), payload));
  out.append(payload);
  return out;
}

std::string EncodeRequest(const Request& request) {
  std::string payload;
  switch (request.type) {
    case MsgType::kBegin:
      PutString(&payload, request.name);
      PutU8(&payload, request.use_staged ? 1 : 0);
      PutU32(&payload, static_cast<uint32_t>(request.predecessors.size()));
      for (int pred : request.predecessors) PutI32(&payload, pred);
      if (!request.use_staged) {
        PutPredicate(&payload, request.input);
        PutPredicate(&payload, request.output);
      }
      break;
    case MsgType::kRead:
      PutI32(&payload, request.entity);
      break;
    case MsgType::kWrite:
      PutI32(&payload, request.entity);
      PutI64(&payload, request.value);
      break;
    case MsgType::kPredicate:
      PutPredicate(&payload, request.input);
      PutPredicate(&payload, request.output);
      break;
    case MsgType::kPing:
      PutI64(&payload, request.value);
      break;
    case MsgType::kCommit:
      // Empty payload = legacy at-most-once commit; 8 bytes = idempotency
      // token (nonzero). Zero tokens encode as empty so re-encoding a
      // decoded legacy frame stays bit-exact.
      if (request.token != 0) PutU64(&payload, request.token);
      break;
    case MsgType::kAbort:
    case MsgType::kResponse:
      break;
  }
  return EncodeFrame(request.type, payload);
}

std::string EncodeResponse(const Response& response) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(response.code));
  PutI64(&payload, response.value);
  PutString(&payload, response.message);
  return EncodeFrame(MsgType::kResponse, payload);
}

DecodedFrame DecodeFrame(const char* data, size_t len) {
  DecodedFrame out;
  if (len < kFrameHeaderBytes) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  Reader header(data, kFrameHeaderBytes);
  uint32_t magic = 0, frame_len = 0, crc = 0;
  uint8_t type = 0;
  header.U32(&magic);
  header.U8(&type);
  header.U32(&frame_len);
  header.U32(&crc);
  if (magic != kFrameMagic) {
    out.status = FrameStatus::kCorrupt;
    out.error = "bad frame magic";
    return out;
  }
  if (frame_len > kMaxPayloadBytes) {
    out.status = FrameStatus::kCorrupt;
    out.error = "oversized frame";
    return out;
  }
  if (len < kFrameHeaderBytes + frame_len) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  std::string payload(data + kFrameHeaderBytes, frame_len);
  if (FrameCrc(type, payload) != crc) {
    out.status = FrameStatus::kCorrupt;
    out.error = "frame CRC mismatch";
    return out;
  }
  out.frame_bytes = kFrameHeaderBytes + frame_len;
  out.type = static_cast<MsgType>(type);
  out.payload = std::move(payload);
  return out;
}

Status DecodeRequest(MsgType type, const std::string& payload, Request* out) {
  *out = Request();
  out->type = type;
  Reader r(payload.data(), payload.size());
  switch (type) {
    case MsgType::kBegin: {
      uint8_t use_staged = 0;
      uint32_t num_preds = 0;
      if (!r.String(&out->name) || !r.U8(&use_staged) || !r.U32(&num_preds) ||
          use_staged > 1 || num_preds > kMaxPayloadBytes / 4) {
        return Status::InvalidArgument("begin: malformed payload");
      }
      out->use_staged = use_staged != 0;
      out->predecessors.reserve(num_preds);
      for (uint32_t i = 0; i < num_preds; ++i) {
        int32_t pred = 0;
        if (!r.I32(&pred)) {
          return Status::InvalidArgument("begin: malformed predecessors");
        }
        out->predecessors.push_back(pred);
      }
      if (!out->use_staged &&
          (!GetPredicate(&r, &out->input) || !GetPredicate(&r, &out->output))) {
        return Status::InvalidArgument("begin: malformed predicates");
      }
      break;
    }
    case MsgType::kRead:
      if (!r.I32(&out->entity)) {
        return Status::InvalidArgument("read: malformed payload");
      }
      break;
    case MsgType::kWrite:
      if (!r.I32(&out->entity) || !r.I64(&out->value)) {
        return Status::InvalidArgument("write: malformed payload");
      }
      break;
    case MsgType::kPredicate:
      if (!GetPredicate(&r, &out->input) || !GetPredicate(&r, &out->output)) {
        return Status::InvalidArgument("predicate: malformed payload");
      }
      break;
    case MsgType::kPing:
      if (!r.I64(&out->value)) {
        return Status::InvalidArgument("ping: malformed payload");
      }
      break;
    case MsgType::kCommit:
      if (!payload.empty()) {
        uint64_t lo = 0, hi = 0;
        uint32_t lo32 = 0, hi32 = 0;
        if (!r.U32(&lo32) || !r.U32(&hi32)) {
          return Status::InvalidArgument("commit: malformed token");
        }
        lo = lo32;
        hi = hi32;
        out->token = lo | (hi << 32);
        if (out->token == 0) {
          // A zero token must be encoded as an empty payload; eight zero
          // bytes would re-encode differently than they decoded.
          return Status::InvalidArgument("commit: zero token");
        }
      }
      break;
    case MsgType::kAbort:
      break;
    case MsgType::kResponse:
      return Status::InvalidArgument("response frame sent as a request");
    default:
      return Status::InvalidArgument("unknown request type");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after request payload");
  }
  return Status::OK();
}

Status DecodeResponse(const std::string& payload, Response* out) {
  *out = Response();
  Reader r(payload.data(), payload.size());
  uint8_t code = 0;
  if (!r.U8(&code) || !r.I64(&out->value) || !r.String(&out->message) ||
      !r.exhausted()) {
    return Status::InvalidArgument("malformed response payload");
  }
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("unknown response status code");
  }
  out->code = static_cast<StatusCode>(code);
  return Status::OK();
}

}  // namespace wire
}  // namespace nonserial
