#ifndef NONSERIAL_MODEL_VERSION_SEARCH_H_
#define NONSERIAL_MODEL_VERSION_SEARCH_H_

#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "predicate/assignment_search.h"
#include "predicate/predicate.h"

namespace nonserial {

/// A solved version assignment: the chosen version state plus, per entity,
/// the index of the chosen candidate within the database state's
/// CandidateValues list.
struct VersionAssignment {
  ValueVector values;
  std::vector<int> choices;
};

/// The paper's *one transaction version correctness* problem (Lemma 1):
/// given database state S and input predicate I_t, find X(t) ∈ V_S with
/// I_t(X(t)). NP-complete in general; practical sizes solve quickly with the
/// pruned search.
///
/// Returns kUnsatisfiable when no version state satisfies the predicate.
StatusOr<VersionAssignment> AssignVersions(
    const DatabaseState& db, const Predicate& input,
    SearchMode mode = SearchMode::kPruned, SearchStats* stats = nullptr);

/// Decision form of the problem.
bool OneTransactionVersionCorrectness(const DatabaseState& db,
                                      const Predicate& input,
                                      SearchMode mode = SearchMode::kPruned);

}  // namespace nonserial

#endif  // NONSERIAL_MODEL_VERSION_SEARCH_H_
