#ifndef NONSERIAL_MODEL_ENTITY_H_
#define NONSERIAL_MODEL_ENTITY_H_

#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "predicate/value.h"

namespace nonserial {

/// Closed integer domain for an entity. dom(e) = [lo, hi].
struct Domain {
  Value lo = std::numeric_limits<Value>::min();
  Value hi = std::numeric_limits<Value>::max();

  bool Contains(Value v) const { return v >= lo && v <= hi; }
};

/// The set E of database entities: names, dense ids, and domains.
/// Shared (by const reference) across states, predicates, schedules, and the
/// protocol; append-only.
class EntityCatalog {
 public:
  EntityCatalog() = default;

  /// Registers a new entity; names must be unique.
  StatusOr<EntityId> Register(const std::string& name,
                              Domain domain = Domain());

  /// Registers `count` entities named <prefix>0 … <prefix>(count-1).
  std::vector<EntityId> RegisterMany(const std::string& prefix, int count,
                                     Domain domain = Domain());

  StatusOr<EntityId> Resolve(const std::string& name) const;

  const std::string& Name(EntityId id) const;
  const Domain& domain(EntityId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<Domain> domains_;
  std::unordered_map<std::string, EntityId> by_name_;
};

}  // namespace nonserial

#endif  // NONSERIAL_MODEL_ENTITY_H_
