#ifndef NONSERIAL_MODEL_STATE_H_
#define NONSERIAL_MODEL_STATE_H_

#include <string>
#include <vector>

#include "model/entity.h"
#include "predicate/candidate_buffer.h"
#include "predicate/value.h"

namespace nonserial {

/// A unique state S^U: one value per entity (paper, Section 3.1). Simply a
/// dense ValueVector of catalog size; this alias documents intent.
using UniqueState = ValueVector;

/// A database state S: a *set* of unique states. This is how the model
/// represents multiple versions — every retained version of the database
/// contributes one unique state.
///
/// The version state V_S is the set of all mix-and-match value assignments
/// drawn per-entity from members of S; it is exponential in size and is
/// never materialized. Instead, CandidateValues() exposes, per entity, the
/// distinct values available — exactly what the version-assignment search
/// consumes.
class DatabaseState {
 public:
  explicit DatabaseState(int num_entities) : num_entities_(num_entities) {}

  /// Adds one unique state (must have exactly num_entities values).
  void Add(UniqueState state);

  int num_entities() const { return num_entities_; }
  int size() const { return static_cast<int>(states_.size()); }
  bool empty() const { return states_.empty(); }
  const std::vector<UniqueState>& states() const { return states_; }

  /// Distinct values available for entity `e` across all unique states,
  /// in first-seen order. Single pass over the states (hash-set dedup) —
  /// O(states), not the O(states²) scan-the-output dedup it replaces.
  std::vector<Value> CandidateValues(EntityId e) const;

  /// Per-entity candidate lists for all entities (the legacy search
  /// input shape; prefer ColumnarCandidates on hot paths).
  std::vector<std::vector<Value>> AllCandidateValues() const;

  /// Per-entity candidates as one flat columnar arena — the assignment
  /// search's native input (a single allocation instead of one vector per
  /// entity). Candidate order per entity is first-seen order, identical to
  /// CandidateValues.
  CandidateBuffer ColumnarCandidates() const;

  /// True iff `assignment` is a member of the version state V_S: each value
  /// is drawn from some unique state in S.
  bool IsVersionState(const ValueVector& assignment) const;

  /// The result of a transaction applied to this state per the paper:
  /// S := S ∪ {t(S)}.
  void Union(UniqueState produced) { Add(std::move(produced)); }

 private:
  int num_entities_;
  std::vector<UniqueState> states_;
};

/// Renders a state as "{e0=1, e1=2, ...}" using catalog names.
std::string StateToString(const EntityCatalog& catalog,
                          const ValueVector& state);

}  // namespace nonserial

#endif  // NONSERIAL_MODEL_STATE_H_
