#ifndef NONSERIAL_MODEL_TRANSACTION_H_
#define NONSERIAL_MODEL_TRANSACTION_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/entity.h"
#include "model/state.h"
#include "predicate/predicate.h"

namespace nonserial {

/// A small deterministic expression over entity values; leaf transactions
/// compute their written values with these. The model only requires that a
/// transaction be a deterministic mapping D -> D^U; arithmetic expressions
/// realize that while keeping effects inspectable and replayable.
class Expr {
 public:
  enum class Kind : uint8_t { kConst, kVar, kAdd, kSub, kMul, kMin, kMax };

  static Expr Const(Value v);
  static Expr Var(EntityId e);
  static Expr Add(Expr a, Expr b);
  static Expr Sub(Expr a, Expr b);
  static Expr Mul(Expr a, Expr b);
  static Expr Min(Expr a, Expr b);
  static Expr Max(Expr a, Expr b);

  Value Eval(const ValueVector& values) const;

  /// Entities read by this expression, added to `out`.
  void CollectReads(std::set<EntityId>* out) const;

  std::string ToString(const EntityCatalog& catalog) const;

 private:
  static Expr MakeBinary(Kind kind, Expr a, Expr b);

  Kind kind_ = Kind::kConst;
  Value constant_ = 0;
  EntityId entity_ = kInvalidEntity;
  std::shared_ptr<const Expr> lhs_;
  std::shared_ptr<const Expr> rhs_;
};

/// One write performed by a leaf transaction: entity := expr(reads).
struct WriteEffect {
  EntityId entity = kInvalidEntity;
  Expr expr;
};

/// The body of a leaf (basic-operation-level) transaction: a set of declared
/// reads plus write effects. Applying the program to an input version state
/// yields the produced unique state t(S): the input with writes applied.
class LeafProgram {
 public:
  LeafProgram() = default;

  /// Declares a read of entity `e` (with no computational use; models pure
  /// reads such as reference lookups).
  void AddRead(EntityId e) { declared_reads_.insert(e); }

  /// Adds a write effect. Entities read by `expr` count as reads.
  void AddWrite(EntityId e, Expr expr);

  /// All entities read (declared plus expression operands).
  const std::set<EntityId>& reads() const { return declared_reads_; }

  /// Entities written — the update set U_t of this leaf.
  std::set<EntityId> WriteSet() const;

  const std::vector<WriteEffect>& writes() const { return writes_; }

  /// t(S): input version state with all write effects applied. Effects are
  /// evaluated against the *input* (simultaneous-assignment semantics), so
  /// swap-style programs behave as specified.
  UniqueState Apply(const ValueVector& input) const;

 private:
  std::set<EntityId> declared_reads_;
  std::vector<WriteEffect> writes_;
};

/// A transaction specification (I_t, O_t): the precondition the input
/// version state must satisfy and the postcondition the transaction's final
/// state must satisfy (paper, Section 3.1). Defaults to (true, true).
struct Specification {
  Predicate input;   ///< I_t
  Predicate output;  ///< O_t
};

/// One node of a nested transaction tree. A node is either a leaf carrying a
/// LeafProgram, or an internal node carrying an implementation (T, P): child
/// node ids plus a partial order over them. Internal nodes designate a final
/// child t_f — a read-only leaf whose input state is "the result" of the
/// node, against which O_t is checked (paper, Section 3.1: the final state
/// of an execution is X(t_f)).
struct TransactionNode {
  std::string name;     ///< Dotted path name, e.g. "t.1.0".
  Specification spec;
  bool is_leaf = true;
  LeafProgram program;  ///< Leaf nodes only.

  std::vector<int> children;  ///< Internal nodes: node ids in the tree.
  /// Partial order P over children, as (i, j) pairs of *positions* in
  /// `children`: child i must precede child j.
  std::vector<std::pair<int, int>> partial_order;
  /// Position (in `children`) of the final pseudo-transaction t_f, or -1.
  int final_child = -1;
};

/// An owning nested transaction tree (Figure 1 of the paper). Node 0 need
/// not be the root; `root()` identifies it.
class TransactionTree {
 public:
  TransactionTree() = default;

  /// Adds a leaf node; returns its node id.
  int AddLeaf(std::string name, LeafProgram program,
              Specification spec = Specification());

  /// Adds an internal node over previously added children. `partial_order`
  /// uses positions into `children`. `final_child` is a position into
  /// `children` or -1 when the node has no designated t_f.
  int AddInternal(std::string name, std::vector<int> children,
                  std::vector<std::pair<int, int>> partial_order,
                  Specification spec = Specification(), int final_child = -1);

  void SetRoot(int node_id) { root_ = node_id; }
  int root() const { return root_; }

  const TransactionNode& node(int id) const;
  TransactionNode& mutable_node(int id);
  int size() const { return static_cast<int>(nodes_.size()); }

  /// The input set N_t of a node: entities appearing in I_t.
  std::set<EntityId> InputSet(int id) const;

  /// The update set U_t: written entities (union over the subtree).
  std::set<EntityId> UpdateSet(int id) const;

  /// The read set: declared reads (union over the subtree).
  std::set<EntityId> ReadSet(int id) const;

  /// The object set of a node per the paper: union of the objects of the
  /// children's output predicates.
  std::vector<std::set<EntityId>> ObjectSet(int id) const;

  /// Validates tree structure: children exist, every non-root node has one
  /// parent, the partial order is acyclic, position indices are in range.
  Status Validate() const;

 private:
  std::vector<TransactionNode> nodes_;
  int root_ = -1;
};

}  // namespace nonserial

#endif  // NONSERIAL_MODEL_TRANSACTION_H_
