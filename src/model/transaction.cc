#include "model/transaction.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "graph/digraph.h"

namespace nonserial {

Expr Expr::Const(Value v) {
  Expr e;
  e.kind_ = Kind::kConst;
  e.constant_ = v;
  return e;
}

Expr Expr::Var(EntityId entity) {
  Expr e;
  e.kind_ = Kind::kVar;
  e.entity_ = entity;
  return e;
}

Expr Expr::MakeBinary(Kind kind, Expr a, Expr b) {
  Expr e;
  e.kind_ = kind;
  e.lhs_ = std::make_shared<const Expr>(std::move(a));
  e.rhs_ = std::make_shared<const Expr>(std::move(b));
  return e;
}

Expr Expr::Add(Expr a, Expr b) {
  return MakeBinary(Kind::kAdd, std::move(a), std::move(b));
}
Expr Expr::Sub(Expr a, Expr b) {
  return MakeBinary(Kind::kSub, std::move(a), std::move(b));
}
Expr Expr::Mul(Expr a, Expr b) {
  return MakeBinary(Kind::kMul, std::move(a), std::move(b));
}
Expr Expr::Min(Expr a, Expr b) {
  return MakeBinary(Kind::kMin, std::move(a), std::move(b));
}
Expr Expr::Max(Expr a, Expr b) {
  return MakeBinary(Kind::kMax, std::move(a), std::move(b));
}

Value Expr::Eval(const ValueVector& values) const {
  switch (kind_) {
    case Kind::kConst:
      return constant_;
    case Kind::kVar:
      return values[entity_];
    case Kind::kAdd:
      return lhs_->Eval(values) + rhs_->Eval(values);
    case Kind::kSub:
      return lhs_->Eval(values) - rhs_->Eval(values);
    case Kind::kMul:
      return lhs_->Eval(values) * rhs_->Eval(values);
    case Kind::kMin:
      return std::min(lhs_->Eval(values), rhs_->Eval(values));
    case Kind::kMax:
      return std::max(lhs_->Eval(values), rhs_->Eval(values));
  }
  return 0;
}

void Expr::CollectReads(std::set<EntityId>* out) const {
  switch (kind_) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->insert(entity_);
      return;
    default:
      lhs_->CollectReads(out);
      rhs_->CollectReads(out);
  }
}

std::string Expr::ToString(const EntityCatalog& catalog) const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(constant_);
    case Kind::kVar:
      return catalog.Name(entity_);
    case Kind::kAdd:
      return StrCat("(", lhs_->ToString(catalog), " + ",
                    rhs_->ToString(catalog), ")");
    case Kind::kSub:
      return StrCat("(", lhs_->ToString(catalog), " - ",
                    rhs_->ToString(catalog), ")");
    case Kind::kMul:
      return StrCat("(", lhs_->ToString(catalog), " * ",
                    rhs_->ToString(catalog), ")");
    case Kind::kMin:
      return StrCat("min(", lhs_->ToString(catalog), ", ",
                    rhs_->ToString(catalog), ")");
    case Kind::kMax:
      return StrCat("max(", lhs_->ToString(catalog), ", ",
                    rhs_->ToString(catalog), ")");
  }
  return "?";
}

void LeafProgram::AddWrite(EntityId e, Expr expr) {
  expr.CollectReads(&declared_reads_);
  writes_.push_back(WriteEffect{e, std::move(expr)});
}

std::set<EntityId> LeafProgram::WriteSet() const {
  std::set<EntityId> out;
  for (const WriteEffect& w : writes_) out.insert(w.entity);
  return out;
}

UniqueState LeafProgram::Apply(const ValueVector& input) const {
  UniqueState out = input;
  // Simultaneous assignment: all expressions read the input state.
  std::vector<Value> produced(writes_.size());
  for (size_t i = 0; i < writes_.size(); ++i) {
    produced[i] = writes_[i].expr.Eval(input);
  }
  for (size_t i = 0; i < writes_.size(); ++i) {
    out[writes_[i].entity] = produced[i];
  }
  return out;
}

int TransactionTree::AddLeaf(std::string name, LeafProgram program,
                             Specification spec) {
  TransactionNode node;
  node.name = std::move(name);
  node.spec = std::move(spec);
  node.is_leaf = true;
  node.program = std::move(program);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int TransactionTree::AddInternal(std::string name, std::vector<int> children,
                                 std::vector<std::pair<int, int>> partial_order,
                                 Specification spec, int final_child) {
  TransactionNode node;
  node.name = std::move(name);
  node.spec = std::move(spec);
  node.is_leaf = false;
  node.children = std::move(children);
  node.partial_order = std::move(partial_order);
  node.final_child = final_child;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

const TransactionNode& TransactionTree::node(int id) const {
  NONSERIAL_CHECK_GE(id, 0);
  NONSERIAL_CHECK_LT(id, size());
  return nodes_[id];
}

TransactionNode& TransactionTree::mutable_node(int id) {
  NONSERIAL_CHECK_GE(id, 0);
  NONSERIAL_CHECK_LT(id, size());
  return nodes_[id];
}

std::set<EntityId> TransactionTree::InputSet(int id) const {
  return node(id).spec.input.Entities();
}

std::set<EntityId> TransactionTree::UpdateSet(int id) const {
  const TransactionNode& n = node(id);
  std::set<EntityId> out;
  if (n.is_leaf) return n.program.WriteSet();
  for (int child : n.children) {
    std::set<EntityId> sub = UpdateSet(child);
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::set<EntityId> TransactionTree::ReadSet(int id) const {
  const TransactionNode& n = node(id);
  std::set<EntityId> out;
  if (n.is_leaf) return n.program.reads();
  for (int child : n.children) {
    std::set<EntityId> sub = ReadSet(child);
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::set<EntityId>> TransactionTree::ObjectSet(int id) const {
  const TransactionNode& n = node(id);
  std::vector<std::set<EntityId>> out;
  for (int child : n.children) {
    for (const std::set<EntityId>& obj : node(child).spec.output.Objects()) {
      if (std::find(out.begin(), out.end(), obj) == out.end()) {
        out.push_back(obj);
      }
    }
  }
  return out;
}

Status TransactionTree::Validate() const {
  if (root_ < 0 || root_ >= size()) {
    return Status::FailedPrecondition("tree has no root");
  }
  std::vector<int> parent_count(size(), 0);
  for (int id = 0; id < size(); ++id) {
    const TransactionNode& n = nodes_[id];
    if (n.is_leaf) continue;
    int num_children = static_cast<int>(n.children.size());
    for (int child : n.children) {
      if (child < 0 || child >= size()) {
        return Status::InvalidArgument(
            StrCat("node ", id, " has out-of-range child ", child));
      }
      if (child == id) {
        return Status::InvalidArgument(StrCat("node ", id, " is own child"));
      }
      ++parent_count[child];
    }
    Digraph po(num_children);
    for (auto [a, b] : n.partial_order) {
      if (a < 0 || a >= num_children || b < 0 || b >= num_children) {
        return Status::InvalidArgument(
            StrCat("node ", id, " partial order references position out of "
                   "range"));
      }
      po.AddEdge(a, b);
    }
    if (po.HasCycle()) {
      return Status::InvalidArgument(
          StrCat("node ", id, " partial order is cyclic"));
    }
    if (n.final_child != -1 &&
        (n.final_child < 0 || n.final_child >= num_children)) {
      return Status::InvalidArgument(
          StrCat("node ", id, " final_child out of range"));
    }
  }
  for (int id = 0; id < size(); ++id) {
    if (id == root_) {
      if (parent_count[id] != 0) {
        return Status::InvalidArgument("root has a parent");
      }
    } else if (parent_count[id] != 1) {
      return Status::InvalidArgument(
          StrCat("node ", id, " has ", parent_count[id],
                 " parents; each subtransaction needs exactly one"));
    }
  }
  return Status::OK();
}

}  // namespace nonserial
