#include "model/version_search.h"

#include "common/logging.h"

namespace nonserial {

StatusOr<VersionAssignment> AssignVersions(const DatabaseState& db,
                                           const Predicate& input,
                                           SearchMode mode,
                                           SearchStats* stats) {
  if (db.empty()) {
    return Status::FailedPrecondition("database state is empty");
  }
  CandidateBuffer candidates = db.ColumnarCandidates();
  std::optional<std::vector<int>> choices =
      FindSatisfyingAssignment(input, candidates, mode, stats);
  if (!choices.has_value()) {
    return Status::Unsatisfiable(
        "no version state satisfies the input predicate");
  }
  VersionAssignment out;
  out.choices = std::move(*choices);
  out.values.resize(db.num_entities());
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    out.values[e] = candidates.view(e)[out.choices[e]];
  }
  NONSERIAL_CHECK(db.IsVersionState(out.values));
  NONSERIAL_CHECK(input.Eval(out.values));
  return out;
}

bool OneTransactionVersionCorrectness(const DatabaseState& db,
                                      const Predicate& input,
                                      SearchMode mode) {
  return AssignVersions(db, input, mode).ok();
}

}  // namespace nonserial
