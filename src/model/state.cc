#include "model/state.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace nonserial {

void DatabaseState::Add(UniqueState state) {
  NONSERIAL_CHECK_EQ(static_cast<int>(state.size()), num_entities_);
  states_.push_back(std::move(state));
}

std::vector<Value> DatabaseState::CandidateValues(EntityId e) const {
  std::vector<Value> out;
  std::unordered_set<Value> seen;
  seen.reserve(states_.size());
  for (const UniqueState& s : states_) {
    if (seen.insert(s[e]).second) {
      out.push_back(s[e]);
    }
  }
  return out;
}

std::vector<std::vector<Value>> DatabaseState::AllCandidateValues() const {
  std::vector<std::vector<Value>> out;
  out.reserve(num_entities_);
  for (EntityId e = 0; e < num_entities_; ++e) {
    out.push_back(CandidateValues(e));
  }
  return out;
}

CandidateBuffer DatabaseState::ColumnarCandidates() const {
  CandidateBuffer buffer;
  std::unordered_set<Value> seen;
  seen.reserve(states_.size());
  for (EntityId e = 0; e < num_entities_; ++e) {
    seen.clear();
    for (const UniqueState& s : states_) {
      if (seen.insert(s[e]).second) {
        buffer.Push(s[e]);
      }
    }
    buffer.FinishEntity();
  }
  return buffer;
}

bool DatabaseState::IsVersionState(const ValueVector& assignment) const {
  if (static_cast<int>(assignment.size()) != num_entities_) return false;
  for (EntityId e = 0; e < num_entities_; ++e) {
    bool found = false;
    for (const UniqueState& s : states_) {
      if (s[e] == assignment[e]) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string StateToString(const EntityCatalog& catalog,
                          const ValueVector& state) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < state.size(); ++i) {
    if (i > 0) os << ", ";
    os << catalog.Name(static_cast<EntityId>(i)) << "=" << state[i];
  }
  os << "}";
  return os.str();
}

}  // namespace nonserial
