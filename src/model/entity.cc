#include "model/entity.h"

#include "common/logging.h"
#include "common/strings.h"

namespace nonserial {

StatusOr<EntityId> EntityCatalog::Register(const std::string& name,
                                           Domain domain) {
  if (by_name_.contains(name)) {
    return Status::AlreadyExists(StrCat("entity '", name, "' already exists"));
  }
  if (domain.lo > domain.hi) {
    return Status::InvalidArgument(
        StrCat("empty domain for entity '", name, "'"));
  }
  EntityId id = static_cast<EntityId>(names_.size());
  names_.push_back(name);
  domains_.push_back(domain);
  by_name_.emplace(name, id);
  return id;
}

std::vector<EntityId> EntityCatalog::RegisterMany(const std::string& prefix,
                                                  int count, Domain domain) {
  std::vector<EntityId> ids;
  ids.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto id = Register(StrCat(prefix, i), domain);
    NONSERIAL_CHECK(id.ok()) << id.status();
    ids.push_back(id.value());
  }
  return ids;
}

StatusOr<EntityId> EntityCatalog::Resolve(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("unknown entity '", name, "'"));
  }
  return it->second;
}

const std::string& EntityCatalog::Name(EntityId id) const {
  NONSERIAL_CHECK_GE(id, 0);
  NONSERIAL_CHECK_LT(id, size());
  return names_[id];
}

const Domain& EntityCatalog::domain(EntityId id) const {
  NONSERIAL_CHECK_GE(id, 0);
  NONSERIAL_CHECK_LT(id, size());
  return domains_[id];
}

}  // namespace nonserial
