#ifndef NONSERIAL_MODEL_EXECUTION_H_
#define NONSERIAL_MODEL_EXECUTION_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/state.h"
#include "model/transaction.h"
#include "predicate/eval_cache.h"

namespace nonserial {

/// An execution (R, X) of one internal node's implementation (T, P):
/// `reads_from` is the relation R over children (edges (j, i) meaning child
/// at position i may draw values from the output of child at position j),
/// and `inputs` is X — one input version state per child position.
struct NodeExecution {
  std::vector<std::pair<int, int>> reads_from;
  std::vector<ValueVector> inputs;
};

/// A full execution of a transaction tree: the root's input state X(t) plus
/// one NodeExecution per internal node (keyed by node id).
struct TreeExecution {
  ValueVector root_input;
  std::map<int, NodeExecution> node_executions;
};

/// Evaluates node outputs under an execution, with memoization.
///
/// The output of a leaf is its program applied to its assigned input state;
/// the output of an internal node is X(t_f) — the input state assigned to
/// its designated final child (the paper's "final state of an execution").
class ExecutionEvaluator {
 public:
  ExecutionEvaluator(const TransactionTree& tree, const TreeExecution& exec);

  /// The input version state assigned to `node_id` (from its parent's
  /// NodeExecution, or root_input for the root).
  StatusOr<ValueVector> InputOf(int node_id);

  /// The produced unique state of `node_id` (see class comment).
  StatusOr<UniqueState> OutputOf(int node_id);

 private:
  const TransactionTree& tree_;
  const TreeExecution& exec_;
  std::vector<int> parent_;          // node id -> parent node id (-1 = root).
  std::vector<int> position_;        // node id -> position within parent.
  std::map<int, UniqueState> memo_;
};

/// Checks the definition of an execution (paper, Section 3.1): for every
/// internal node, (t_i, t_j) ∈ P+ implies (t_j, t_i) ∉ R+, and shapes agree
/// (one input per child, edges within range).
Status ValidateExecutionStructure(const TransactionTree& tree,
                                  const TreeExecution& exec);

/// Checks the parent-based property: every child's input value for every
/// entity comes either from the parent's input state or from the output of
/// a sibling t_j with (t_j, t_i) ∈ R.
Status CheckParentBased(const TransactionTree& tree,
                        const TreeExecution& exec);

/// Checks correctness: every node's input predicate I_t holds on its
/// assigned input state, and every internal node's output predicate O_t
/// holds on X(t_f) of its execution. Nodes without a designated final child
/// must have O_t = true.
///
/// `cache`, when non-null, memoizes the conjunct evaluations — re-verifying
/// the same history (e.g. across crash-recovery replay cycles, or a
/// workload whose transactions share specification predicates) then mostly
/// probes the cache instead of re-walking atoms.
Status CheckCorrectness(const TransactionTree& tree, const TreeExecution& exec,
                        EvalCache* cache = nullptr);

/// All three checks; OK iff the execution is a correct, parent-based
/// execution in the sense of the paper. `cache` as in CheckCorrectness.
Status CheckCorrectExecution(const TransactionTree& tree,
                             const TreeExecution& exec,
                             EvalCache* cache = nullptr);

/// Builds the canonical serial execution: every internal node's children
/// run one after another in a given (or default position) order that must be
/// consistent with P, each child reading the full output of its predecessor
/// (R is the chain). Useful as ground truth in tests and benchmarks.
///
/// `orders`, when provided, maps internal node id -> permutation of child
/// positions.
StatusOr<TreeExecution> MakeSerialExecution(
    const TransactionTree& tree, ValueVector root_input,
    const std::map<int, std::vector<int>>* orders = nullptr);

}  // namespace nonserial

#endif  // NONSERIAL_MODEL_EXECUTION_H_
