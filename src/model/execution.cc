#include "model/execution.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "graph/digraph.h"

namespace nonserial {
namespace {

// Builds parent/position maps for the tree.
void BuildParentMaps(const TransactionTree& tree, std::vector<int>* parent,
                     std::vector<int>* position) {
  parent->assign(tree.size(), -1);
  position->assign(tree.size(), -1);
  for (int id = 0; id < tree.size(); ++id) {
    const TransactionNode& node = tree.node(id);
    for (size_t pos = 0; pos < node.children.size(); ++pos) {
      (*parent)[node.children[pos]] = id;
      (*position)[node.children[pos]] = static_cast<int>(pos);
    }
  }
}

// Digraph over child positions from a (from, to) pair list.
Digraph EdgesToDigraph(int n, const std::vector<std::pair<int, int>>& edges) {
  Digraph g(n);
  for (auto [a, b] : edges) g.AddEdge(a, b);
  return g;
}

}  // namespace

ExecutionEvaluator::ExecutionEvaluator(const TransactionTree& tree,
                                       const TreeExecution& exec)
    : tree_(tree), exec_(exec) {
  BuildParentMaps(tree_, &parent_, &position_);
}

StatusOr<ValueVector> ExecutionEvaluator::InputOf(int node_id) {
  if (node_id == tree_.root()) return exec_.root_input;
  int parent = parent_[node_id];
  if (parent < 0) {
    return Status::InvalidArgument(
        StrCat("node ", node_id, " is not attached to the tree"));
  }
  auto it = exec_.node_executions.find(parent);
  if (it == exec_.node_executions.end()) {
    return Status::FailedPrecondition(
        StrCat("no execution recorded for internal node ", parent));
  }
  int pos = position_[node_id];
  if (pos < 0 || pos >= static_cast<int>(it->second.inputs.size())) {
    return Status::FailedPrecondition(
        StrCat("execution of node ", parent, " lacks input for child ", pos));
  }
  return it->second.inputs[pos];
}

StatusOr<UniqueState> ExecutionEvaluator::OutputOf(int node_id) {
  auto memo = memo_.find(node_id);
  if (memo != memo_.end()) return memo->second;

  const TransactionNode& node = tree_.node(node_id);
  NONSERIAL_ASSIGN_OR_RETURN(ValueVector input, InputOf(node_id));
  UniqueState output;
  if (node.is_leaf) {
    output = node.program.Apply(input);
  } else {
    if (node.final_child < 0) {
      return Status::FailedPrecondition(
          StrCat("internal node ", node_id, " ('", node.name,
                 "') has no designated final child; its result is undefined"));
    }
    auto it = exec_.node_executions.find(node_id);
    if (it == exec_.node_executions.end()) {
      return Status::FailedPrecondition(
          StrCat("no execution recorded for internal node ", node_id));
    }
    if (node.final_child >= static_cast<int>(it->second.inputs.size())) {
      return Status::FailedPrecondition(
          StrCat("execution of node ", node_id, " lacks final-child input"));
    }
    // X(t_f): the version state the final pseudo-transaction observes. A
    // leaf t_f applies its (normally empty) program for uniformity; an
    // internal final child contributes its own recursively defined result.
    int final_id = node.children[node.final_child];
    const TransactionNode& final_node = tree_.node(final_id);
    if (final_node.is_leaf) {
      output = final_node.program.Apply(it->second.inputs[node.final_child]);
    } else {
      NONSERIAL_ASSIGN_OR_RETURN(output, OutputOf(final_id));
    }
  }
  memo_.emplace(node_id, output);
  return output;
}

Status ValidateExecutionStructure(const TransactionTree& tree,
                                  const TreeExecution& exec) {
  NONSERIAL_RETURN_IF_ERROR(tree.Validate());
  for (int id = 0; id < tree.size(); ++id) {
    const TransactionNode& node = tree.node(id);
    if (node.is_leaf) continue;
    auto it = exec.node_executions.find(id);
    if (it == exec.node_executions.end()) {
      return Status::FailedPrecondition(
          StrCat("internal node ", id, " ('", node.name,
                 "') has no recorded execution"));
    }
    const NodeExecution& ne = it->second;
    int n = static_cast<int>(node.children.size());
    if (static_cast<int>(ne.inputs.size()) != n) {
      return Status::InvalidArgument(
          StrCat("execution of node ", id, " has ", ne.inputs.size(),
                 " inputs for ", n, " children"));
    }
    for (auto [a, b] : ne.reads_from) {
      if (a < 0 || a >= n || b < 0 || b >= n) {
        return Status::InvalidArgument(
            StrCat("execution of node ", id, " has R edge out of range"));
      }
    }
    // (t_i, t_j) ∈ P+  =>  (t_j, t_i) ∉ R+.
    Digraph p = EdgesToDigraph(n, node.partial_order);
    Digraph r = EdgesToDigraph(n, ne.reads_from);
    std::vector<std::vector<bool>> p_closure = p.TransitiveClosure();
    std::vector<std::vector<bool>> r_closure = r.TransitiveClosure();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (p_closure[i][j] && r_closure[j][i]) {
          return Status::FailedPrecondition(StrCat(
              "partial order invalidation at node ", id, ": children ", i,
              " -> ", j, " ordered by P but R+ orders ", j, " -> ", i));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckParentBased(const TransactionTree& tree,
                        const TreeExecution& exec) {
  ExecutionEvaluator eval(tree, exec);
  for (int id = 0; id < tree.size(); ++id) {
    const TransactionNode& node = tree.node(id);
    if (node.is_leaf) continue;
    auto it = exec.node_executions.find(id);
    if (it == exec.node_executions.end()) {
      return Status::FailedPrecondition(
          StrCat("internal node ", id, " has no recorded execution"));
    }
    const NodeExecution& ne = it->second;
    NONSERIAL_ASSIGN_OR_RETURN(ValueVector parent_input, eval.InputOf(id));
    int n = static_cast<int>(node.children.size());
    // Pre-compute sibling outputs feeding each child.
    std::vector<std::vector<int>> feeders(n);
    for (auto [from, to] : ne.reads_from) feeders[to].push_back(from);
    for (int i = 0; i < n; ++i) {
      const ValueVector& x_i = ne.inputs[i];
      if (x_i.size() != parent_input.size()) {
        return Status::InvalidArgument(
            StrCat("input of child ", i, " of node ", id, " has wrong size"));
      }
      for (size_t e = 0; e < x_i.size(); ++e) {
        if (x_i[e] == parent_input[e]) continue;
        bool justified = false;
        for (int j : feeders[i]) {
          NONSERIAL_ASSIGN_OR_RETURN(UniqueState out_j,
                                     eval.OutputOf(node.children[j]));
          if (out_j[e] == x_i[e]) {
            justified = true;
            break;
          }
        }
        if (!justified) {
          return Status::FailedPrecondition(StrCat(
              "child ", i, " of node ", id, " reads entity ", e,
              " = ", x_i[e],
              " which comes neither from the parent input nor from any "
              "sibling it reads from"));
        }
      }
    }
  }
  return Status::OK();
}

Status CheckCorrectness(const TransactionTree& tree, const TreeExecution& exec,
                        EvalCache* cache) {
  ExecutionEvaluator eval(tree, exec);
  // Memoized evaluation path: a predicate evaluates through its
  // CachedPredicate companion, so identical (conjunct, values) pairs —
  // common when a history is re-verified or transactions share specs — are
  // hash probes. The plain path is kept for cache == nullptr.
  auto holds = [cache](const Predicate& p, const ValueVector& v) {
    if (cache == nullptr) return p.Eval(v);
    return CachedPredicate(p, cache).Eval(p, v);
  };
  for (int id = 0; id < tree.size(); ++id) {
    const TransactionNode& node = tree.node(id);
    // Input condition: I_t(X(t)).
    NONSERIAL_ASSIGN_OR_RETURN(ValueVector input, eval.InputOf(id));
    if (!holds(node.spec.input, input)) {
      return Status::FailedPrecondition(
          StrCat("input predicate of node ", id, " ('", node.name,
                 "') does not hold on its assigned version state"));
    }
    // Output condition: O_t(X(t_f)) for internal nodes; for leaves, O_t is
    // checked on the produced unique state t(X(t)).
    if (node.spec.output.IsTrue()) continue;
    NONSERIAL_ASSIGN_OR_RETURN(UniqueState output, eval.OutputOf(id));
    if (!holds(node.spec.output, output)) {
      return Status::FailedPrecondition(
          StrCat("output predicate of node ", id, " ('", node.name,
                 "') does not hold on its final state"));
    }
  }
  return Status::OK();
}

Status CheckCorrectExecution(const TransactionTree& tree,
                             const TreeExecution& exec, EvalCache* cache) {
  NONSERIAL_RETURN_IF_ERROR(ValidateExecutionStructure(tree, exec));
  NONSERIAL_RETURN_IF_ERROR(CheckParentBased(tree, exec));
  return CheckCorrectness(tree, exec, cache);
}

namespace {

// Recursively fills `exec` with a serial execution of `node_id` starting
// from `input`; returns the node's output state.
StatusOr<UniqueState> SerializeNode(
    const TransactionTree& tree, int node_id, const ValueVector& input,
    const std::map<int, std::vector<int>>* orders, TreeExecution* exec) {
  const TransactionNode& node = tree.node(node_id);
  if (node.is_leaf) return node.program.Apply(input);

  int n = static_cast<int>(node.children.size());
  std::vector<int> order;
  if (orders != nullptr) {
    auto it = orders->find(node_id);
    if (it != orders->end()) order = it->second;
  }
  if (order.empty()) {
    // Default: a topological order of P (positions ascending as tiebreak).
    Digraph p = EdgesToDigraph(n, node.partial_order);
    p.EnsureNodes(n);
    auto topo = p.TopologicalOrder();
    if (!topo.has_value()) {
      return Status::InvalidArgument(
          StrCat("node ", node_id, " has cyclic partial order"));
    }
    order = *topo;
  } else {
    // Verify the requested order respects P.
    std::vector<int> rank(n, 0);
    for (int i = 0; i < n; ++i) rank[order[i]] = i;
    for (auto [a, b] : node.partial_order) {
      if (rank[a] > rank[b]) {
        return Status::InvalidArgument(
            StrCat("requested order for node ", node_id,
                   " violates its partial order"));
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument(
        StrCat("order for node ", node_id, " must cover all children"));
  }

  NodeExecution ne;
  ne.inputs.assign(n, ValueVector());
  std::vector<UniqueState> child_outputs(n);
  ValueVector current = input;
  int prev = -1;
  for (int pos : order) {
    ne.inputs[pos] = current;
    if (prev >= 0) ne.reads_from.push_back({prev, pos});
    NONSERIAL_ASSIGN_OR_RETURN(
        UniqueState out,
        SerializeNode(tree, node.children[pos], current, orders, exec));
    child_outputs[pos] = out;
    current = std::move(out);
    prev = pos;
  }
  exec->node_executions[node_id] = std::move(ne);
  // The node's result: X(t_f)'s product if a final child is designated,
  // else the last child's output.
  if (node.final_child >= 0) return child_outputs[node.final_child];
  return current;
}

}  // namespace

StatusOr<TreeExecution> MakeSerialExecution(
    const TransactionTree& tree, ValueVector root_input,
    const std::map<int, std::vector<int>>* orders) {
  NONSERIAL_RETURN_IF_ERROR(tree.Validate());
  TreeExecution exec;
  exec.root_input = std::move(root_input);
  NONSERIAL_ASSIGN_OR_RETURN(
      UniqueState out,
      SerializeNode(tree, tree.root(), exec.root_input, orders, &exec));
  (void)out;
  return exec;
}

}  // namespace nonserial
