// Schedule classifier: a command-line tool over the correctness-class
// recognizers. Feed it a schedule in the paper's notation and an optional
// conjunct decomposition; it reports membership in every class plus witness
// serialization orders.
//
//   ./build/examples/schedule_classifier "R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)"
//   ./build/examples/schedule_classifier "R1(x) W2(x) W1(x)" "x"
//   ./build/examples/schedule_classifier "..." "x,y" "z"   # two objects
//
// With no arguments it classifies the paper's Example 1.

#include <cstdio>
#include <string>
#include <vector>

#include "classes/recognizers.h"
#include "classes/recoverability.h"
#include "common/strings.h"
#include "schedule/schedule.h"

using namespace nonserial;

int main(int argc, char** argv) {
  std::string text = argc > 1
                         ? argv[1]
                         : "R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)";
  auto parsed = ParseSchedule(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "cannot parse schedule: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const Schedule& s = *parsed;

  // Objects: remaining arguments are comma-separated entity lists; default
  // is one singleton object per entity.
  ObjectSetList objects;
  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      std::set<EntityId> object;
      for (const std::string& name : SplitAndTrim(argv[i], ',')) {
        bool found = false;
        for (EntityId e = 0; e < s.num_entities(); ++e) {
          if (s.EntityName(e) == name) {
            object.insert(e);
            found = true;
          }
        }
        if (!found) {
          std::fprintf(stderr, "object entity '%s' not in the schedule\n",
                       name.c_str());
          return 1;
        }
      }
      objects.push_back(std::move(object));
    }
  } else {
    for (EntityId e = 0; e < s.num_entities(); ++e) objects.push_back({e});
  }

  std::printf("schedule: %s\n\n%s\n", s.ToString().c_str(),
              s.ToGrid().c_str());
  std::printf("objects:");
  for (const auto& object : objects) {
    std::printf(" {");
    bool first = true;
    for (EntityId e : object) {
      std::printf("%s%s", first ? "" : ",", s.EntityName(e).c_str());
      first = false;
    }
    std::printf("}");
  }
  std::printf("\n\n");

  if (static_cast<int>(s.ActiveTxs().size()) > kMaxExactTxs) {
    std::printf("(%d active transactions: exact classes SR/MVSR/PWSR/PC "
                "skipped — their recognition is NP-complete)\n\n",
                static_cast<int>(s.ActiveTxs().size()));
  }
  ClassMembership m = ClassifyAll(s, objects);

  auto row = [](const char* name, bool member, const std::string& extra) {
    std::printf("  %-42s %s%s\n", name, member ? "IN " : "out",
                extra.empty() ? "" : ("   " + extra).c_str());
  };
  auto order_string = [&](bool member, std::vector<TxId>* witness) {
    if (!member || witness->empty()) return std::string();
    std::string out = "witness:";
    for (TxId tx : *witness) out += " t" + std::to_string(tx + 1);
    return out;
  };

  std::vector<TxId> witness;
  bool csr = IsConflictSerializable(s, &witness);
  row("CSR   (conflict serializable)", csr, order_string(csr, &witness));
  witness.clear();
  bool vsr = m.vsr && IsViewSerializable(s, &witness);
  row("SR    (view serializable)", m.vsr, order_string(vsr, &witness));
  row("MVCSR (multiversion conflict serializable)", m.mvcsr, "");
  witness.clear();
  bool mvsr = m.mvsr && IsMVViewSerializable(s, &witness);
  row("MVSR  (multiversion serializable)", m.mvsr,
      order_string(mvsr, &witness));
  row("PWCSR (predicate-wise conflict serializable)", m.pwcsr, "");
  row("PWSR  (predicate-wise serializable)", m.pwsr, "");
  row("CPC   (conflict predicate correct)", m.cpc, "");
  row("PC    (predicate correct)", m.pc, "");

  // Recovery hierarchy, under the two canonical commit placements.
  RecoveryClassification eager =
      ClassifyRecovery(s, CommitsAfterLastOp(s));
  std::set<TxId> active_txs = s.ActiveTxs();
  std::vector<TxId> order(active_txs.begin(), active_txs.end());
  RecoveryClassification deferred =
      ClassifyRecovery(s, CommitsAtEnd(s, order));
  std::printf("\nrecovery (commit after own last op): %s\n",
              eager.ToString().c_str());
  std::printf("recovery (group commit at end):      %s\n",
              deferred.ToString().c_str());

  if (m.cpc && !csr) {
    std::printf("\nThis schedule is NOT serializable by conflicts, yet the "
                "paper's scheduler target\nclass CPC admits it: correctness "
                "without serializability.\n");
  }
  return 0;
}
