// Nested design projects: the full hierarchy of the paper in one run.
// Projects are top-level transactions of a hierarchical Correct Execution
// Protocol; designers are their subtransactions. Designers' work is
// visible to project-mates immediately, invisible outside the project
// until the project commits, and a designer's commit is only *relative* to
// the project — exactly Section 5.1's nested semantics.
//
//   ./build/examples/nested_projects [seed]

#include <cstdio>
#include <cstdlib>

#include "workload/nested_gen.h"

using namespace nonserial;

int main(int argc, char** argv) {
  NestedWorkloadParams params;
  params.num_projects = 4;
  params.members_per_project = 4;
  params.entities_per_project = 5;
  params.think_time = 150;
  params.project_chain_prob = 0.5;
  params.member_chain_prob = 0.4;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  NestedWorkload nw = MakeNestedDesignWorkload(params);

  std::printf("Hierarchy: %zu projects x %d designers over %zu parameters "
              "(seed %llu)\n\n",
              nw.nested.groups.size(), params.members_per_project,
              nw.workload.initial.size(),
              static_cast<unsigned long long>(params.seed));
  for (size_t g = 0; g < nw.nested.groups.size(); ++g) {
    const NestedGroup& group = nw.nested.groups[g];
    std::printf("  %-10s", group.name.c_str());
    if (!group.predecessors.empty()) {
      std::printf(" (follows project%d)", group.predecessors[0]);
    }
    std::printf("\n");
    for (size_t t = 0; t < nw.workload.txs.size(); ++t) {
      if (nw.nested.group_of_tx[t] != static_cast<int>(g)) continue;
      const SimTx& tx = nw.workload.txs[t];
      std::printf("    %-8s arrives t=%-5lld", tx.name.c_str(),
                  static_cast<long long>(tx.arrival));
      if (!tx.predecessors.empty()) {
        std::printf("  (continues %s)",
                    nw.workload.txs[tx.predecessors[0]].name.c_str());
      }
      std::printf("\n");
    }
  }

  Simulator sim;
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<ConcurrencyController> controller;
  SimResult result = sim.Run(nw.workload, MakeNestedCepFactory(nw.nested),
                             &store, &controller);
  const auto* nested =
      dynamic_cast<const NestedCepController*>(controller.get());

  std::printf("\nmakespan=%lld  blocked=%lld  member-aborts=%lld  "
              "all-committed=%s\n",
              static_cast<long long>(result.makespan),
              static_cast<long long>(result.total_blocked),
              static_cast<long long>(result.total_aborts),
              result.all_committed ? "yes" : "NO");
  std::printf("group commits=%lld  group resets=%lld\n",
              static_cast<long long>(nested->stats().group_commits),
              static_cast<long long>(nested->stats().group_resets));

  std::printf("\nEvery project committed atomically at the top level; "
              "within each project the\ndesigners ran under their own "
              "Correct Execution Protocol instance, multiversion\nreads "
              "and all, without ever leaking uncommitted state across "
              "project boundaries.\n");
  return result.all_committed ? 0 : 1;
}
