// Protocol trace: watch the Correct Execution Protocol think. Drives the
// controller directly (no simulator) through the paper's core scenario —
// a cooperating successor validated optimistically, re-assigned when its
// predecessor writes, and a second reader aborted for partial-order
// invalidation — and prints every protocol decision as it happens.
//
//   ./build/examples/protocol_trace

#include <cstdio>

#include "protocol/cep.h"
#include "protocol/trace.h"

using namespace nonserial;

namespace {

/// Prints events as they happen.
class PrintingObserver : public CepObserver {
 public:
  void OnEvent(const CepEvent& event) override {
    std::printf("    | %s\n", event.ToString().c_str());
  }
};

Predicate Range(EntityId e, Value lo, Value hi) {
  Predicate p;
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, lo)}));
  p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, hi)}));
  return p;
}

TxProfile Profile(const char* name, Predicate input,
                  std::vector<int> preds = {}) {
  TxProfile profile;
  profile.name = name;
  profile.input = std::move(input);
  profile.predecessors = std::move(preds);
  return profile;
}

void Act(const char* what) { std::printf("%s\n", what); }

}  // namespace

int main() {
  VersionStore store({50});  // One design entity, initial value 50.
  CorrectExecutionProtocol cep(&store);
  PrintingObserver observer;
  cep.SetObserver(&observer);

  std::printf("Scenario: chief (tx0) precedes both helper (tx1) and "
              "latecomer (tx2) in P.\nEntity x starts at 50.\n\n");

  cep.Register(0, Profile("chief", Range(0, 0, 100)));
  cep.Register(1, Profile("helper", Range(0, 0, 100), {0}));
  cep.Register(2, Profile("latecomer", Range(0, 0, 100), {0}));

  Act("helper begins before the chief has produced anything:");
  (void)cep.Begin(1);

  Act("latecomer begins too, and immediately reads x (optimistically, the "
      "initial version):");
  (void)cep.Begin(2);
  Value v = 0;
  (void)cep.Read(2, 0, &v);

  Act("the chief begins and writes x := 80 — Figure 4 re-evaluation fires:");
  (void)cep.Begin(0);
  (void)cep.Write(0, 0, 80);
  cep.WriteDone(0, 0);
  std::printf("  (helper had not read x: silently re-assigned to the "
              "chief's version;\n   latecomer HAD read the stale version: "
              "partial-order invalidation)\n");

  Act("the simulator would now abort and restart the latecomer:");
  for (int tx : cep.TakeForcedAborts()) cep.Abort(tx);
  (void)cep.TakeWakeups();

  Act("helper reads x — it sees the predecessor's 80, as P demands:");
  (void)cep.Read(1, 0, &v);

  Act("helper tries to commit before the chief — it must wait:");
  (void)cep.Commit(1);

  Act("chief commits; helper retries and commits:");
  (void)cep.Commit(0);
  (void)cep.TakeWakeups();
  (void)cep.Commit(1);

  Act("latecomer restarts: predecessor domination now pins it to the "
      "chief's version:");
  (void)cep.Begin(2);
  (void)cep.Read(2, 0, &v);
  (void)cep.Commit(2);

  const CorrectExecutionProtocol::Stats& stats = cep.stats();
  std::printf("\nprotocol counters: validations=%lld reevals=%lld "
              "reassigns=%lld po_aborts=%lld\n",
              static_cast<long long>(stats.validations),
              static_cast<long long>(stats.reevals),
              static_cast<long long>(stats.reassigns),
              static_cast<long long>(stats.po_aborts));
  std::printf("final committed x = %lld\n",
              static_cast<long long>(store.LatestCommittedSnapshot()[0]));
  return 0;
}
