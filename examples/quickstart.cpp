// Quickstart: two long-duration transactions that a serializable system
// would order (or block), executing concurrently — and *correctly* — under
// the paper's Correct Execution Protocol.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"

using nonserial::Database;
using nonserial::Expr;
using nonserial::ProtocolKind;
using nonserial::RunReport;

int main() {
  // 1. A tiny design database: two parameters with an explicit CNF
  //    consistency constraint.
  Database db;
  if (!db.AddEntity("width", 50).ok() || !db.AddEntity("height", 50).ok()) {
    return 1;
  }
  if (!db.SetConstraint("(width >= 0) & (width <= 100) & "
                        "(height >= 0) & (height <= 100)")
           .ok()) {
    return 1;
  }

  // 2. Two designers. Each reads both parameters, thinks for a long time
  //    (think_time = 50 ticks between operations), and updates one of them
  //    based on what they saw.
  int alice = db.NewTransaction("alice", /*arrival=*/0, /*think_time=*/50);
  (void)db.Read(alice, "width");
  (void)db.Read(alice, "height");
  (void)db.Write(alice, "width",
                 Expr::Add(*db.Var("height"), Expr::Const(1)));

  int bob = db.NewTransaction("bob", /*arrival=*/1, /*think_time=*/50);
  (void)db.Read(bob, "width");
  (void)db.Read(bob, "height");
  (void)db.Write(bob, "height", Expr::Add(*db.Var("width"), Expr::Const(1)));

  // 3. Run under every protocol and compare.
  std::printf("%-8s %9s %9s %8s  final(width,height)  notes\n", "proto",
              "makespan", "blocked", "aborts");
  for (ProtocolKind kind :
       {ProtocolKind::kCep, ProtocolKind::kStrict2pl, ProtocolKind::kMvto}) {
    auto report = db.Run(kind);
    if (!report.ok()) {
      std::printf("run failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    const RunReport& r = *report;
    std::printf("%-8s %9lld %9lld %8lld  (%lld, %lld)          %s\n",
                r.protocol.c_str(),
                static_cast<long long>(r.result.makespan),
                static_cast<long long>(r.result.total_blocked),
                static_cast<long long>(r.result.total_aborts),
                static_cast<long long>(r.result.final_state[0]),
                static_cast<long long>(r.result.final_state[1]),
                kind == ProtocolKind::kCep
                    ? (r.verification.ok()
                           ? "verified correct execution (Theorem 2)"
                           : "VERIFICATION FAILED")
                    : "serializable execution");
  }

  std::printf(
      "\nUnder CEP both designers read the *original* state (51, 51):\n"
      "no serial order produces that outcome, yet the execution satisfies\n"
      "every input and output predicate — correctness without "
      "serializability.\n");
  return 0;
}
