// Office information system: the paper's second motivating domain. A
// purchase-requisition document flows through clerks who each hold it for a
// long time; budget counters must respect explicit constraints, and two
// requisitions in flight may interleave freely as long as every step's
// input and output predicates hold.
//
// The interesting twist: clerk approvals form a chain (a partial order),
// and the budget check of a later step depends on values an earlier step
// writes — the Correct Execution Protocol re-assigns versions across the
// chain instead of blocking the office.
//
//   ./build/examples/office_workflow

#include <cstdio>

#include "core/database.h"

using namespace nonserial;

namespace {

bool Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  Database db;
  // Budget state: department budget, spent-so-far, and two requisition
  // amounts awaiting approval. Constraint: spending never exceeds budget
  // and amounts are non-negative.
  if (!db.AddEntity("budget", 1000).ok()) return 1;
  if (!db.AddEntity("spent", 200).ok()) return 1;
  if (!db.AddEntity("req_a", 0).ok()) return 1;
  if (!db.AddEntity("req_b", 0).ok()) return 1;
  if (!Check(db.SetConstraint("(spent <= budget) & (spent >= 0) & "
                              "(req_a >= 0) & (req_b >= 0)"))) {
    return 1;
  }

  // Requisition A: clerk enters the amount (long data-entry session) ...
  int enter_a = db.NewTransaction("enter-req-a", /*arrival=*/0,
                                  /*think=*/100);
  (void)db.Read(enter_a, "req_a");
  (void)db.Write(enter_a, "req_a", Expr::Const(300));

  // ... then the manager approves and books it. The approval must follow
  // the entry (partial order) and needs a state where the booking keeps
  // spent <= budget.
  int approve_a = db.NewTransaction("approve-req-a", /*arrival=*/10,
                                    /*think=*/150);
  (void)db.Read(approve_a, "req_a");
  (void)db.Read(approve_a, "spent");
  (void)db.Read(approve_a, "budget");
  (void)db.Write(approve_a, "spent",
                 Expr::Min(Expr::Add(*db.Var("spent"), *db.Var("req_a")),
                           *db.Var("budget")));
  (void)db.Write(approve_a, "req_a", Expr::Const(0));
  Check(db.SetInput(approve_a, "(req_a >= 0) & (spent >= 0) & "
                               "(spent <= budget)"));
  Check(db.SetOutput(approve_a, "(spent <= budget) & (req_a = 0)"));
  Check(db.After(approve_a, enter_a));

  // Requisition B runs concurrently through a different clerk.
  int enter_b = db.NewTransaction("enter-req-b", /*arrival=*/5,
                                  /*think=*/100);
  (void)db.Read(enter_b, "req_b");
  (void)db.Write(enter_b, "req_b", Expr::Const(450));

  int approve_b = db.NewTransaction("approve-req-b", /*arrival=*/15,
                                    /*think=*/150);
  (void)db.Read(approve_b, "req_b");
  (void)db.Read(approve_b, "spent");
  (void)db.Read(approve_b, "budget");
  (void)db.Write(approve_b, "spent",
                 Expr::Min(Expr::Add(*db.Var("spent"), *db.Var("req_b")),
                           *db.Var("budget")));
  (void)db.Write(approve_b, "req_b", Expr::Const(0));
  Check(db.SetInput(approve_b, "(req_b >= 0) & (spent >= 0) & "
                               "(spent <= budget)"));
  Check(db.SetOutput(approve_b, "(spent <= budget) & (req_b = 0)"));
  Check(db.After(approve_b, enter_b));

  std::printf("Two purchase requisitions in flight; budget constraint "
              "spent <= budget.\n\n");
  std::printf("%-8s | %9s %9s %8s | %-28s | %s\n", "proto", "makespan",
              "blocked", "aborts", "final (budget,spent,a,b)", "check");
  for (ProtocolKind kind :
       {ProtocolKind::kCep, ProtocolKind::kStrict2pl, ProtocolKind::kMvto}) {
    auto report = db.Run(kind);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const ValueVector& fs = report->result.final_state;
    char finals[64];
    std::snprintf(finals, sizeof(finals), "(%lld, %lld, %lld, %lld)",
                  static_cast<long long>(fs[0]),
                  static_cast<long long>(fs[1]),
                  static_cast<long long>(fs[2]),
                  static_cast<long long>(fs[3]));
    bool consistent = db.constraint().Eval(fs);
    std::printf("%-8s | %9lld %9lld %8lld | %-28s | %s%s\n",
                report->protocol.c_str(),
                static_cast<long long>(report->result.makespan),
                static_cast<long long>(report->result.total_blocked),
                static_cast<long long>(report->result.total_aborts), finals,
                consistent ? "consistent" : "INCONSISTENT",
                kind == ProtocolKind::kCep
                    ? (report->verification.ok() ? ", verified" : ", FAILED")
                    : "");
  }

  std::printf("\nEvery protocol preserves the budget constraint; CEP does "
              "it without making\nclerk B wait for clerk A's session, and "
              "its history is formally re-verified\nas a correct execution "
              "of the Section 3 model.\n");
  return 0;
}
