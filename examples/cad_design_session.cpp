// CAD design session: the paper's motivating scenario. A chief designer
// decomposes a chip-layout change into cooperating subtasks (Figure 1
// style); designers work for hours (large think times), hand work to each
// other through the partial order, and the Correct Execution Protocol keeps
// everyone busy — re-assigning versions instead of blocking, aborting only
// on genuine partial-order invalidations.
//
//   ./build/examples/cad_design_session [seed]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "workload/generators.h"

using namespace nonserial;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  // A design project: 12 designers over 20 layout parameters grouped into
  // 4 modules (the conjuncts of the consistency constraint). 30% of
  // designers continue the work of an earlier one (cooperation edges).
  DesignWorkloadParams params;
  params.num_txs = 12;
  params.num_entities = 20;
  params.num_conjuncts = 4;
  params.reads_per_tx = 4;
  params.think_time = 600;  // "Hours" at the workstation.
  params.cross_group_fraction = 0.15;
  params.precedence_prob = 0.3;
  params.relational_clause_prob = 0.4;
  params.arrival_spacing = 50;
  params.seed = seed;
  SimWorkload workload = MakeDesignWorkload(params);
  Predicate constraint = WorkloadConstraint(workload);

  std::printf("Design project: %zu designers, %zu parameters, %zu modules "
              "(seed %llu)\n",
              workload.txs.size(), workload.initial.size(),
              workload.objects.size(),
              static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < workload.txs.size(); ++i) {
    const SimTx& tx = workload.txs[i];
    int reads = 0, writes = 0;
    for (const SimStep& s : tx.steps) {
      reads += s.kind == SimStep::Kind::kRead;
      writes += s.kind == SimStep::Kind::kWrite;
    }
    std::printf("  %-11s arrives t=%-5lld  %d reads, %d writes",
                tx.name.c_str(), static_cast<long long>(tx.arrival), reads,
                writes);
    if (!tx.predecessors.empty()) {
      std::printf("  (continues designer%d's work)", tx.predecessors[0]);
    }
    std::printf("\n");
  }

  std::printf("\n%-8s | %9s %10s %8s %11s | %s\n", "proto", "makespan",
              "blocked", "aborts", "wasted-ops", "history check");
  for (ProtocolKind kind :
       {ProtocolKind::kCep, ProtocolKind::kPredicatewise2pl,
        ProtocolKind::kStrict2pl, ProtocolKind::kMvto}) {
    RunReport report = RunWorkload(workload, kind, constraint);
    std::printf("%-8s | %9lld %10lld %8lld %11lld | %s\n",
                report.protocol.c_str(),
                static_cast<long long>(report.result.makespan),
                static_cast<long long>(report.result.total_blocked),
                static_cast<long long>(report.result.total_aborts),
                static_cast<long long>(report.result.total_wasted_ops),
                kind == ProtocolKind::kCep
                    ? (report.verification.ok() ? "correct execution (ok)"
                                                : "FAILED")
                    : "serializable");
    if (kind == ProtocolKind::kCep) {
      std::printf("         | protocol internals: %s\n",
                  report.stats_summary.c_str());
    }
  }

  std::printf("\nThe serializable baselines make designers wait out each "
              "other's think time\n(or redo hours of work); CEP's waits are "
              "bounded by the short write locks.\n");
  return 0;
}
