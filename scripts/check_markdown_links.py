#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, and fails if a relative target
does not exist on disk (anchors-only, external, and mailto links are
skipped). Used by the docs leg of scripts/ci.sh.
"""

import os
import re
import subprocess
import sys

# Inline [text](target) — target ends at the first unescaped ')' or space
# (titles like [t](file "title") carry a space before the quote).
INLINE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: str) -> list[str]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=root, capture_output=True, text=True, check=True)
        files = [f for f in out.stdout.splitlines() if f]
        if files:
            return files
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if not d.startswith((".", "build")) and d != "related"]
        found.extend(os.path.relpath(os.path.join(dirpath, f), root)
                     for f in filenames if f.endswith(".md"))
    return found


def check_file(root: str, path: str) -> list[str]:
    with open(os.path.join(root, path), encoding="utf-8") as f:
        text = f.read()
    # Don't flag link-shaped text inside fenced code blocks.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    errors = []
    targets = (INLINE.findall(text) + IMAGE.findall(text)
               + REFDEF.findall(text))
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]  # Strip any anchor.
        if not rel:
            continue
        base = root if rel.startswith("/") else os.path.dirname(
            os.path.join(root, path))
        resolved = os.path.normpath(os.path.join(base, rel.lstrip("/")))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link -> {target}")
    return errors


def main() -> int:
    root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    errors = []
    files = markdown_files(root)
    for path in files:
        errors.extend(check_file(root, path))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
