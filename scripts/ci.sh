#!/usr/bin/env bash
# CI entry point: build + test three times — plain, under ThreadSanitizer,
# and under AddressSanitizer+UndefinedBehaviorSanitizer. The TSan pass is
# what keeps the concurrent protocol engine honest (the multi-threaded
# driver, storage, and lock-manager tests must come back data-race-free);
# the ASan/UBSan pass covers the fault-injection and crash-recovery paths,
# where abandoned transactions and log-truncation replay make lifetime
# bugs easiest to introduce. The plain leg also emits BENCH_parallel.json
# with machine-readable throughput numbers.
set -eu
cd "$(dirname "$0")/.."

echo "== [1/3] normal build =="
cmake -B build -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== bench artifact: BENCH_parallel.json =="
./build/bench/bench_parallel_protocol --json > BENCH_parallel.json
cat BENCH_parallel.json

echo "== [2/3] ThreadSanitizer build =="
cmake -B build-tsan -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j
# TSan halts the process on the first race, so a green ctest run means
# race-free executions of every test, including the parallel driver.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"

echo "== [3/3] ASan+UBSan build =="
cmake -B build-asan -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "CI OK"
