#!/usr/bin/env bash
# CI entry point: build + test twice — once plain, once under
# ThreadSanitizer. The TSan pass is what keeps the concurrent protocol
# engine honest: the multi-threaded driver, storage, and lock-manager
# tests must come back data-race-free.
set -eu
cd "$(dirname "$0")/.."

echo "== [1/2] normal build =="
cmake -B build -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== [2/2] ThreadSanitizer build =="
cmake -B build-tsan -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j
# TSan halts the process on the first race, so a green ctest run means
# race-free executions of every test, including the parallel driver.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"

echo "CI OK"
