#!/usr/bin/env bash
# CI entry point: build + test three times — plain, under ThreadSanitizer,
# and under AddressSanitizer+UndefinedBehaviorSanitizer. The TSan pass is
# what keeps the concurrent protocol engine honest (the multi-threaded
# driver, storage, and lock-manager tests must come back data-race-free);
# the ASan/UBSan pass covers the fault-injection and crash-recovery paths,
# where abandoned transactions and log-truncation replay make lifetime
# bugs easiest to introduce. The plain leg also emits the machine-readable
# run-report artifacts (REPORT_parallel.json, REPORT_recovery.json + a
# Chrome trace of a chaos run) and gates every bench's --json output
# through json.tool.
set -eu
cd "$(dirname "$0")/.."

echo "== [0/3] docs: markdown links + Doxygen =="
python3 scripts/check_markdown_links.py
# The Doxygen gate (docs/Doxyfile, WARN_AS_ERROR) runs only where doxygen
# is installed — the build container does not ship it, and the docs must
# not make the whole pipeline depend on an optional tool.
if command -v doxygen > /dev/null 2>&1; then
  doxygen docs/Doxyfile
  echo "doxygen: warning-clean"
else
  echo "doxygen not installed; skipping API-doc gate"
fi

echo "== [1/3] normal build =="
cmake -B build -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== report artifacts: REPORT_parallel.json + TRACE_chaos.json =="
./build/bench/bench_parallel_protocol --json --trace TRACE_chaos.json \
  > REPORT_parallel.json
python3 -m json.tool REPORT_parallel.json > /dev/null
python3 -m json.tool TRACE_chaos.json > /dev/null
cat REPORT_parallel.json

echo "== durability gate: group commit >= 2x flush-per-commit at 8 threads =="
# The bench already fails itself below 2x; this re-checks the published
# artifact, so a report regression (missing rows, zeroed counters) fails CI
# even if the bench's own gate is edited.
python3 - <<'EOF'
import json, sys
report = json.load(open("REPORT_parallel.json"))
rows = {(r.get("name"), r.get("threads")): r for r in report["results"]}
sync8 = rows[("durable_sync", 8)]
group8 = rows[("durable_group", 8)]
speedup = group8["ops_per_sec"] / sync8["ops_per_sec"]
assert speedup >= 2.0, f"group-commit speedup {speedup:.2f}x < 2x"
assert group8["group_commit"]["batches"] > 0, "no batches recorded"
assert group8["group_commit"]["commits"] > 0, "no batched commits recorded"
assert group8["group_commit"]["device_flushes"] < sync8["group_commit"][
    "device_flushes"], "group commit did not reduce device flushes"
for threads in (16, 32):
    assert ("durable_group", threads) in rows, f"missing {threads}-thread row"
print(f"durability gate ok: {speedup:.2f}x, "
      f"{group8['group_commit']['batches']} batches for "
      f"{group8['group_commit']['commits']} commits")
EOF

echo "== report artifact: REPORT_recovery.json (corruption-recovery leg) =="
# bench_recovery exits non-zero unless checkpointed recovery beats full
# replay on long logs — the durability PR's perf gate. Its JSON lands next
# to the parallel report as a first-class artifact.
./build/bench/bench_recovery --json > REPORT_recovery.json
python3 -m json.tool REPORT_recovery.json > /dev/null
cat REPORT_recovery.json

echo "== hot-path gate: BENCH_eval_hotpath.json (flat path >= 3x seed) =="
# bench_eval_hotpath exits non-zero unless the cache-native pipeline (flat
# version slabs -> columnar candidates -> striped batch eval) beats an
# inline reimplementation of the seed pipeline by >= 3x on the miss path
# with bit-identical verdicts. As with the durability gate, the published
# artifact is re-checked here so a report regression fails CI even if the
# bench's own gate is edited.
./build/bench/bench_eval_hotpath --json > BENCH_eval_hotpath.json
python3 - <<'EOF'
import json
report = json.load(open("BENCH_eval_hotpath.json"))
rows = {r.get("name"): r for r in report["results"]}
row = rows["eval_hotpath_miss"]
assert row["agreement"] is True, "seed/flat truth bits diverged"
assert row["speedup"] >= 3.0, f"hot-path speedup {row['speedup']:.2f}x < 3x"
assert row["evaluations"] > 0, "no conjunct evaluations recorded"
print(f"hot-path gate ok: {row['speedup']:.2f}x "
      f"({row['seed_ns_per_conjunct']:.1f} -> "
      f"{row['flat_ns_per_conjunct']:.1f} ns/conjunct over "
      f"{row['evaluations']} evaluations)")
EOF
cat BENCH_eval_hotpath.json

echo "== serving gate: BENCH_server.json (wire path >= 0.5x in-process) =="
# bench_server exits non-zero unless the TCP wire path holds >= 0.5x of
# in-process-session throughput at 8 think-paced closed-loop sessions
# (EXPERIMENTS.md E17), with exact commit counts per leg and a shedding
# leg whose client-observed retry-later count equals server.shed. The
# published artifact is re-checked here so a report regression (missing
# rows, zeroed shed counters, dropped queue-depth fields) fails CI even
# if the bench's own gate is edited.
./build/bench/bench_server --json > BENCH_server.json
python3 - <<'EOF'
import json
report = json.load(open("BENCH_server.json"))
rows = {r.get("name"): r for r in report["results"]}
for name in ("inproc_think", "wire_think", "wire_shed"):
    assert name in rows, f"missing {name} row"
ratio = rows["wire_think"]["ops_per_sec"] / rows["inproc_think"]["ops_per_sec"]
assert ratio >= 0.5, f"wire/in-process ratio {ratio:.2f}x < 0.5x"
assert ratio == report["config"]["wire_vs_inproc_think"] or \
    abs(ratio - report["config"]["wire_vs_inproc_think"]) < 1e-3, \
    "reported ratio disagrees with rows"
shed = rows["wire_shed"]["server"]
assert shed["shed"] > 0, "shedding leg recorded no sheds"
assert 0.0 < shed["shed_rate"] < 1.0, "shed_rate outside (0, 1)"
haul = rows["wire_long_haul"]
assert haul["committed"] >= 10_000, \
    f"long-haul leg shrank to {haul['committed']} transactions"
assert haul["retired_tx"] == haul["committed"], \
    f"{haul['committed'] - haul['retired_tx']} committed tx never retired"
assert 0.0 < haul["scan_cost_ratio"] <= 2.5, \
    f"long-haul scan cost grew {haul['scan_cost_ratio']:.2f}x (limit 2.5x)"
for name, row in rows.items():
    if name == "wire_long_haul":
        continue  # single-session leg; carries its own fields, no server row
    srv = row["server"]
    for key in ("accepted", "shed", "queue_depth_p99", "queue_depth_max",
                "inflight_p99", "wire_errors"):
        assert key in srv, f"{name} row missing server.{key}"
    assert srv["wire_errors"] == 0, f"{name} saw wire errors"
assert report["config"]["ping_rtt_us"] > 0, "no ping RTT recorded"
print(f"serving gate ok: wire {ratio:.2f}x in-process, "
      f"ping {report['config']['ping_rtt_us']:.1f}us, "
      f"shed leg {shed['shed']} sheds at rate {shed['shed_rate']:.2f}, "
      f"long haul {haul['committed']} tx at {haul['scan_cost_ratio']:.2f}x")
EOF
cat BENCH_server.json

echo "== scenario gate: REPORT_scenarios.json (anomaly zoo, all protocols) =="
# run_scenarios replays every checked-in spec against all six protocols
# (plus a crash/recover chaos sweep) and exits non-zero on any verdict,
# class, or final-state mismatch. The published artifact is re-checked
# here — including the paper's CPC-admits/SR-forbids split — so a report
# regression fails CI even if the tool's own gate is edited.
./build/tools/run_scenarios --chaos --json scenarios > REPORT_scenarios.json
python3 -m json.tool REPORT_scenarios.json > /dev/null
python3 - <<'EOF'
import json
report = json.load(open("REPORT_scenarios.json"))
assert report["ok"] is True, "scenario suite reported failures"
config = report["config"]
assert config["specs"] >= 10, f"anomaly zoo shrank to {config['specs']} specs"
assert len(config["protocols"]) == 6, "expected all six protocols"
assert config["chaos"] is True, "chaos replay was not exercised"
rows = {r["name"]: r for r in report["results"]}
split = False
crash_points = 0
for name, row in rows.items():
    assert row["ok"], f"{name} failed: {row['failures'][:1]}"
    crash_points += row["chaos_crash_points"]
    for perm in row["permutations"]:
        for proto, run in perm["protocols"].items():
            assert run["constraint_ok"], f"{name} [{proto}] broke its constraint"
            if run["classes_exact"] and run["cpc"] and not run["sr"]:
                split = True
assert split, "no run landed in CPC \\ SR -- the paper's split went untested"
assert crash_points > 0, "no chaos crash points exercised"
sweep = rows["write_skew_sweep"]
assert sweep["sweep_runs"] > 0, "all-permutations sweep ran nothing"
print(f"scenario gate ok: {config['specs']} specs, "
      f"{config['total_runs']} runs, {crash_points} crash points, "
      f"sweep {sweep['sweep_runs']} runs")
EOF

echo "== wire-chaos gate: REPORT_wire_chaos.json (faults x crash/recover) =="
# wire_chaos drives a retrying client through every net.* failpoint while
# the server is crash-killed, recovered, and restarted mid-run, and exits
# non-zero on any lost acked commit, duplicate apply, false abort, or
# CPC-unclean recovered history. The artifact is re-checked here so a
# report regression fails CI even if the tool's own gate is edited.
./build/tools/wire_chaos --json > REPORT_wire_chaos.json
python3 -m json.tool REPORT_wire_chaos.json > /dev/null
python3 - <<'EOF'
import json
report = json.load(open("REPORT_wire_chaos.json"))
assert report["ok"] is True, "wire-chaos sweep reported failures"
config = report["config"]
assert config["total_runs"] >= 200, \
    f"sweep shrank to {config['total_runs']} runs (need >= 200)"
assert len(config["points"]) >= 7, "net.* failpoint catalog shrank"
rows = {r["name"]: r for r in report["results"]}
replays = 0
for name in config["points"]:
    row = rows[name]
    assert row["ok"], f"{name} failed: {row.get('failures', [])[:1]}"
    assert row["lost_acked_commits"] == 0, f"{name} lost an acked commit"
    assert row["unresolved"] == 0, f"{name} left commits unclassified"
    assert row["acked_commits"] > 0, f"{name} committed nothing"
    replays += row["client"]["commit_replays"]
assert replays > 0, "no lost commit ack was ever answered from the token table"
assert rows["lease_reclaim"]["ok"], "lease reclaim leg failed"
server = report["metrics"]["server"]
assert server["retries"] > 0, "no tokenized commit resend reached the server"
assert server["lease_expired"] > 0, "no lease ever expired"
assert server["retired_tx"] > 0, "no transaction was retired"
print(f"wire-chaos gate ok: {config['total_runs']} runs over "
      f"{len(config['points'])} fault points, {replays} token-table replays, "
      f"{server['lease_expired']} leases reclaimed, "
      f"{server['retired_tx']} tx retired")
EOF
cat REPORT_wire_chaos.json

echo "== json gate: every bench must emit one valid --json document =="
# The quick benches run in full; the expensive sweeps are already covered
# by the parallel report above, so this gate sticks to the cheap ones plus
# the google-benchmark binary (whose --json maps to its own reporter).
for bench in bench_fig2_regions bench_class_containment bench_lemma1_sat \
             bench_validation_cost bench_partial_order bench_lock_manager; do
  echo "-- ${bench} --json"
  ./build/bench/"${bench}" --json | python3 -m json.tool > /dev/null
done
# The repeated-validation bench must also pass with the incremental
# machinery disabled (the from-scratch baseline the speedups compare to).
echo "-- bench_validation_cost --cache=off --json"
./build/bench/bench_validation_cost --cache=off --json \
  | python3 -m json.tool > /dev/null

echo "== [2/3] ThreadSanitizer build =="
cmake -B build-tsan -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j
# TSan halts the process on the first race, so a green ctest run means
# race-free executions of every test, including the parallel driver and
# the batched-log fuzzers (wal_corruption_fuzz_test and
# crash_recovery_fuzz_test run group-commit seeds, so the WAL's pipelined
# writer thread is raced against workers, checkpoints, and crash markers
# under TSan here). The serving layer is covered too: server_test and
# wire_fuzz_test race the epoll event loop, the worker pool, and live
# hostile connections; wire_resilience_test races the retrying client's
# reconnect/resend machinery against injected wire faults and lease
# reclaim; and engine_shutdown_test races engine teardown (including
# session-destructor rollback) against parked sessions and in-flight
# group-commit batches.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)"
# The scenario suite re-runs under TSan too: the concurrent Session-API
# transport and the chaos crash/recover cycles race the engine's group-
# commit and recovery machinery in ways the unit tests do not.
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tools/run_scenarios --chaos scenarios

echo "== [3/3] ASan+UBSan build =="
cmake -B build-asan -S . -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j
# The corruption fuzzers (wal_corruption_fuzz_test, crash_recovery_fuzz_test)
# run in every leg via ctest; under ASan they double as a memory-safety
# audit of the damaged-image decode paths.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "CI OK"
