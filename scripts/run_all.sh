#!/usr/bin/env bash
# Builds everything, runs the full test suite and every experiment binary,
# and records the outputs at the repository root (test_output.txt,
# bench_output.txt) — the EXPERIMENTS.md regeneration entry point.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===================================================================="
    echo "== $(basename "$b")"
    echo "===================================================================="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $(basename "$e") ---"
  "$e" > /dev/null 2>&1 && echo "ok" || echo "EXIT $?"
done
