// Experiment E7 — predicate decomposition: the predicate-wise classes
// (Section 4.2/4.3) gain freedom from every extra conjunct of the database
// consistency constraint. Two measurements on the same transactions:
//
//  (a) offline: the fraction of random interleavings admitted by PWCSR/CPC
//      as the constraint splits into more objects (CSR shown as the
//      decomposition-independent floor);
//  (b) online: predicate-wise 2PL throughput against strict 2PL as the
//      lock groups follow the conjuncts.

#include <cstdio>

#include "classes/recognizers.h"
#include "common/random.h"
#include "core/database.h"
#include "workload/generators.h"
#include "workload/schedule_gen.h"

#include "bench_util.h"

namespace nonserial {
namespace {

int Run() {
  std::printf("Part A: admitted interleavings vs number of conjuncts\n");
  std::printf("(4 txs x 4 ops over 8 entities, 3000 random interleavings "
              "per row)\n\n");
  std::printf("%10s | %8s %8s %8s %8s\n", "conjuncts", "CSR", "PWCSR", "CPC",
              "MVCSR");

  Rng rng(5150);
  ScheduleGenParams params;
  params.num_txs = 4;
  params.num_entities = 8;
  params.ops_per_tx = 4;
  params.write_fraction = 0.5;

  bool monotone = true;
  int64_t prev_pwcsr = -1, prev_cpc = -1;
  for (int k : {1, 2, 4, 8}) {
    ObjectSetList objects = PartitionObjects(params.num_entities, k);
    int64_t csr = 0, pwcsr = 0, cpc = 0, mvcsr = 0;
    Rng local(rng.Next64());
    for (int i = 0; i < 3000; ++i) {
      Schedule s = RandomSchedule(params, &local);
      csr += IsConflictSerializable(s);
      pwcsr += IsPredicatewiseConflictSerializable(s, objects);
      cpc += IsConflictPredicateCorrect(s, objects);
      mvcsr += IsMVConflictSerializable(s);
    }
    std::printf("%10d | %8lld %8lld %8lld %8lld\n", k,
                static_cast<long long>(csr), static_cast<long long>(pwcsr),
                static_cast<long long>(cpc), static_cast<long long>(mvcsr));
    if (prev_pwcsr >= 0 && (pwcsr < prev_pwcsr || cpc < prev_cpc)) {
      monotone = false;
    }
    prev_pwcsr = pwcsr;
    prev_cpc = cpc;
  }
  std::printf("\n(admission grows with decomposition; CSR is decomposition-"
              "independent)\n\n");

  std::printf("Part B: predicate-wise 2PL vs strict 2PL as conjuncts grow\n");
  std::printf("(16 long transactions, think=300, 24 entities)\n\n");
  std::printf("%10s %-8s | %9s %10s %8s\n", "conjuncts", "proto", "makespan",
              "blocked", "aborts");

  bool pw_wins = true;
  for (int k : {1, 2, 4, 8}) {
    DesignWorkloadParams wl;
    wl.num_txs = 16;
    wl.num_entities = 24;
    wl.num_conjuncts = k;
    wl.reads_per_tx = 4;
    wl.think_time = 300;
    wl.cross_group_fraction = 0.25;
    wl.arrival_spacing = 10;
    wl.seed = 31;
    SimWorkload workload = MakeDesignWorkload(wl);
    Predicate constraint = WorkloadConstraint(workload);

    SimTime blocked_s2pl = 0, blocked_pw = 0;
    for (ProtocolKind kind :
         {ProtocolKind::kStrict2pl, ProtocolKind::kPredicatewise2pl,
          ProtocolKind::kMvto, ProtocolKind::kPwMvto}) {
      RunReport report = RunWorkload(workload, kind, constraint);
      const SimResult& r = report.result;
      std::printf("%10d %-8s | %9lld %10lld %8lld\n", k,
                  report.protocol.c_str(),
                  static_cast<long long>(r.makespan),
                  static_cast<long long>(r.total_blocked),
                  static_cast<long long>(r.total_aborts));
      if (kind == ProtocolKind::kStrict2pl) blocked_s2pl = r.total_blocked;
      if (kind == ProtocolKind::kPredicatewise2pl) {
        blocked_pw = r.total_blocked;
      }
    }
    if (blocked_pw > blocked_s2pl) pw_wins = false;
    std::printf("\n");
  }

  bool ok = monotone && pw_wins;
  std::printf("RESULT: %s — per-conjunct admission is monotone in the "
              "decomposition, and\npredicate-wise lock release never waits "
              "longer than strict 2PL.\n",
              ok ? "shape reproduced" : "SHAPE NOT REPRODUCED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "conjuncts_ablation",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
