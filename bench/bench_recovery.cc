// Experiment E14 — recovery time vs log length, with and without checkpoint
// compaction. Full replay decodes and redoes every record ever logged, so
// its cost grows with history; a checkpointed log replays one checkpoint
// frame plus the records since, so its cost is bounded by the checkpoint
// interval. The gate (wired into scripts/ci.sh): on long logs, checkpointed
// recovery must beat full replay.

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "storage/version_store.h"
#include "storage/wal.h"

#include "bench_util.h"

namespace nonserial {
namespace {

constexpr int kEntities = 16;
constexpr int kWritesPerTx = 3;
constexpr int kCheckpointEvery = 250;  // Transactions per checkpoint.
constexpr int kReps = 5;               // Recovery reps; best-of wins.

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Logs one committed transaction: its version installs, the logical
/// commit payload (which carries a full input-state snapshot — the bulk of
/// a transaction's log footprint), and the commit marker.
void AppendTx(WriteAheadLog* wal, int tx, ValueVector* state) {
  std::vector<std::pair<EntityId, Value>> writes;
  ValueVector input = *state;
  for (int k = 0; k < kWritesPerTx; ++k) {
    EntityId e = static_cast<EntityId>((tx * kWritesPerTx + k) % kEntities);
    Value v = static_cast<Value>(tx) * 100 + k;
    wal->LogAppend(e, v, tx);
    writes.emplace_back(e, v);
    (*state)[static_cast<size_t>(e)] = v;
  }
  wal->LogTxPayload(tx, "t" + std::to_string(tx), std::move(input), {},
                    writes);
  wal->LogCommit(tx);
}

/// Best-of-kReps recovery wall time; the last rep's result lands in `out`.
int64_t MeasureRecover(const WriteAheadLog& wal, RecoveryResult* out) {
  int64_t best = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    int64_t t0 = NowUs();
    *out = wal.Recover();
    int64_t us = NowUs() - t0;
    if (best < 0 || us < best) best = us;
  }
  return best;
}

bool Run(const BenchOptions&, BenchReport* report) {
  std::printf("Recovery time vs log length: full replay vs checkpointed "
              "(checkpoint every %d txs).\n(best of %d recoveries per "
              "point)\n\n",
              kCheckpointEvery, kReps);
  std::printf("%7s | %9s %9s %9s | %9s %9s %9s | %7s\n", "txs",
              "full-recs", "full-us", "full-scan", "ckpt-recs", "ckpt-us",
              "ckpt-scan", "speedup");

  const ValueVector initial(kEntities, 0);
  bool ok = true;
  for (int txs : {500, 2000, 8000}) {
    WriteAheadLog full(initial);
    ValueVector state = initial;
    for (int t = 0; t < txs; ++t) AppendTx(&full, t, &state);

    WriteAheadLog checkpointed(initial);
    state = initial;
    for (int t = 0; t < txs; ++t) {
      AppendTx(&checkpointed, t, &state);
      if ((t + 1) % kCheckpointEvery == 0) {
        Status cp = checkpointed.Checkpoint();
        if (!cp.ok()) {
          std::printf("checkpoint failed at tx %d: %s\n", t,
                      cp.ToString().c_str());
          return false;
        }
      }
    }

    RecoveryResult full_rec, ckpt_rec;
    int64_t full_us = MeasureRecover(full, &full_rec);
    int64_t ckpt_us = MeasureRecover(checkpointed, &ckpt_rec);

    // Both images must recover the identical committed history.
    bool row_ok =
        full_rec.status.ok() && ckpt_rec.status.ok() &&
        static_cast<int>(full_rec.committed.size()) == txs &&
        static_cast<int>(ckpt_rec.committed.size()) == txs &&
        full_rec.store->LatestCommittedSnapshot() ==
            ckpt_rec.store->LatestCommittedSnapshot();
    // The gate: once the history dwarfs the checkpoint interval,
    // bounded-log recovery must win.
    if (txs >= 2000) row_ok &= ckpt_us < full_us;
    ok &= row_ok;

    double speedup = ckpt_us > 0 ? static_cast<double>(full_us) /
                                       static_cast<double>(ckpt_us)
                                 : 0.0;
    std::printf("%7d | %9lld %9lld %9lld | %9lld %9lld %9lld | %6.1fx%s\n",
                txs, static_cast<long long>(full.stats().total_records),
                static_cast<long long>(full_us),
                static_cast<long long>(full_rec.frames_scanned),
                static_cast<long long>(checkpointed.size()),
                static_cast<long long>(ckpt_us),
                static_cast<long long>(ckpt_rec.frames_scanned), speedup,
                row_ok ? "" : "  FAIL");

    Json row = Json::Object();
    row["name"] = "recovery_time";
    row["txs"] = txs;
    row["full_records"] = full.stats().total_records;
    row["full_recover_us"] = full_us;
    row["full_frames_scanned"] = full_rec.frames_scanned;
    row["checkpointed_records"] = static_cast<int64_t>(checkpointed.size());
    row["checkpoints"] = checkpointed.stats().checkpoints;
    row["checkpointed_recover_us"] = ckpt_us;
    row["checkpointed_frames_scanned"] = ckpt_rec.frames_scanned;
    row["speedup"] = speedup;
    row["gated"] = txs >= 2000;
    row["ok"] = row_ok;
    report->AddResult(std::move(row));
  }

  std::printf("\nRESULT: %s — checkpointed recovery beats full replay by "
              "skipping per-record framing and fate analysis; its frame "
              "count stays bounded while full replay scans every record "
              "ever logged.\n",
              ok ? "reproduced" : "FAILED");
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(
      argc, argv, "recovery",
      [](const nonserial::BenchOptions& options,
         nonserial::BenchReport* report) {
        report->config()["entities"] = nonserial::kEntities;
        report->config()["writes_per_tx"] = nonserial::kWritesPerTx;
        report->config()["checkpoint_every"] = nonserial::kCheckpointEvery;
        return nonserial::Run(options, report);
      });
}
