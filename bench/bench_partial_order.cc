// Experiment E12 — partial-order serializability (<SR / <CSR, Section 4.2):
// "the increased concurrency from such a structure is obvious when a
// locking protocol is used … if partial orders are used, the transaction
// can access a different, available data item."
//
// Quantified two ways on the same transaction bodies:
//  (a) scheduling freedom: the number of legal interleavings (and of
//      CSR-acceptable ones) when intra-transaction order is total vs
//      partial — the <CSR class admits every extra member;
//  (b) intra-transaction freedom: linear extensions per program.

#include <cstdio>
#include <vector>

#include "classes/recognizers.h"
#include "schedule/po_program.h"

#include "bench_util.h"

namespace nonserial {
namespace {

Op R(TxId tx, EntityId e) { return Op{tx, OpKind::kRead, e}; }
Op W(TxId tx, EntityId e) { return Op{tx, OpKind::kWrite, e}; }

struct Row {
  const char* label;
  std::vector<PoProgram> programs;
};

int Run() {
  // Two designers each touching two independent items: reads then writes,
  // with the per-item pairs ordered but the items mutually unordered in the
  // partial-order variant.
  auto chain_pair = [](TxId tx, EntityId a, EntityId b) {
    return ChainProgram(tx, {R(tx, a), W(tx, a), R(tx, b), W(tx, b)});
  };
  auto loose_pair = [](TxId tx, EntityId a, EntityId b) {
    PoProgram p;
    p.tx = tx;
    p.ops = {R(tx, a), W(tx, a), R(tx, b), W(tx, b)};
    p.order = {{0, 1}, {2, 3}};  // Only within-item order.
    return p;
  };

  std::vector<Row> rows = {
      {"total order (chains)", {chain_pair(0, 0, 1), chain_pair(1, 1, 0)}},
      {"partial order (items free)",
       {loose_pair(0, 0, 1), loose_pair(1, 1, 0)}},
  };

  std::printf("Scheduling freedom from partial orders "
              "(2 txs x 4 ops over items x, y):\n\n");
  std::printf("%-28s %14s %10s %10s %10s\n", "programs", "interleavings",
              "CSR-ok", "MVCSR-ok", "CPC-ok");

  int64_t totals[2] = {0, 0};
  int64_t csr_ok[2] = {0, 0};
  ObjectSetList objects = {{0}, {1}};
  for (size_t i = 0; i < rows.size(); ++i) {
    int64_t total = 0, csr = 0, mvcsr = 0, cpc = 0;
    ForEachPoInterleaving(rows[i].programs, 2, [&](const Schedule& s) {
      ++total;
      csr += IsConflictSerializable(s);
      mvcsr += IsMVConflictSerializable(s);
      cpc += IsConflictPredicateCorrect(s, objects);
      return true;
    });
    totals[i] = total;
    csr_ok[i] = csr;
    std::printf("%-28s %14lld %10lld %10lld %10lld\n", rows[i].label,
                static_cast<long long>(total), static_cast<long long>(csr),
                static_cast<long long>(mvcsr), static_cast<long long>(cpc));
  }

  std::printf("\nLinear extensions per program: chain = %lld, "
              "partially ordered = %lld\n",
              static_cast<long long>(
                  CountLinearExtensions(rows[0].programs[0])),
              static_cast<long long>(
                  CountLinearExtensions(rows[1].programs[0])));

  bool ok = totals[1] > totals[0] && csr_ok[1] > csr_ok[0];
  std::printf("\nRESULT: %s — the partial order multiplies both the legal "
              "interleavings (%lld -> %lld)\nand the serializable ones "
              "(%lld -> %lld): exactly the <CSR gain of Section 4.2.\n",
              ok ? "reproduced" : "NOT REPRODUCED",
              static_cast<long long>(totals[0]),
              static_cast<long long>(totals[1]),
              static_cast<long long>(csr_ok[0]),
              static_cast<long long>(csr_ok[1]));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "partial_order",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
