// Experiment E4 — Theorem 1 and Section 4.3: recognizing the rich classes
// (SR, MVSR, PC) is NP-complete, while CSR/MVCSR/CPC have polynomial
// recognizers. We time both recognizer families on the same random
// schedules as the transaction count grows: the exact recognizers blow up
// factorially (they enumerate serial orders), the graph-based ones stay
// flat. This is the practical argument for CPC as the protocol target.

#include <chrono>
#include <cstdio>

#include "classes/recognizers.h"
#include "common/random.h"
#include "workload/schedule_gen.h"

#include "bench_util.h"

namespace nonserial {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run() {
  std::printf("Recognizer scaling: exponential exact classes vs polynomial "
              "conflict classes.\n");
  std::printf("(mean microseconds per schedule, 20 random schedules per "
              "row)\n\n");
  std::printf("%4s | %10s %10s %10s | %10s %10s %10s\n", "txs", "SR",
              "MVSR", "PC", "CSR", "MVCSR", "CPC");

  Rng rng(7);
  double last_exact = 0.0;
  double first_exact = 0.0;
  double poly_max = 0.0;
  for (int txs : {2, 4, 6, 8, 9}) {
    ScheduleGenParams params;
    params.num_txs = txs;
    params.num_entities = 4;
    params.ops_per_tx = 3;
    ObjectSetList objects = PartitionObjects(params.num_entities, 2);

    const int kTrials = 20;
    int64_t vsr_us = 0, mvsr_us = 0, pc_us = 0;
    int64_t csr_us = 0, mvcsr_us = 0, cpc_us = 0;
    for (int i = 0; i < kTrials; ++i) {
      Schedule s = RandomSchedule(params, &rng);
      int64_t t0 = NowUs();
      (void)IsViewSerializable(s);
      int64_t t1 = NowUs();
      (void)IsMVViewSerializable(s);
      int64_t t2 = NowUs();
      (void)IsPredicateCorrect(s, objects);
      int64_t t3 = NowUs();
      (void)IsConflictSerializable(s);
      int64_t t4 = NowUs();
      (void)IsMVConflictSerializable(s);
      int64_t t5 = NowUs();
      (void)IsConflictPredicateCorrect(s, objects);
      int64_t t6 = NowUs();
      vsr_us += t1 - t0;
      mvsr_us += t2 - t1;
      pc_us += t3 - t2;
      csr_us += t4 - t3;
      mvcsr_us += t5 - t4;
      cpc_us += t6 - t5;
    }
    auto mean = [&](int64_t total) {
      return static_cast<double>(total) / kTrials;
    };
    std::printf("%4d | %10.1f %10.1f %10.1f | %10.2f %10.2f %10.2f\n", txs,
                mean(vsr_us), mean(mvsr_us), mean(pc_us), mean(csr_us),
                mean(mvcsr_us), mean(cpc_us));
    if (txs == 2) first_exact = mean(vsr_us) + mean(mvsr_us) + mean(pc_us);
    last_exact = mean(vsr_us) + mean(mvsr_us) + mean(pc_us);
    poly_max = std::max(poly_max,
                        mean(csr_us) + mean(mvcsr_us) + mean(cpc_us));
  }

  double blowup = first_exact > 0 ? last_exact / first_exact : 0.0;
  std::printf("\nExact-recognizer blowup 2->9 txs: %.0fx; polynomial "
              "recognizers stay <= %.1f us total.\n",
              blowup, poly_max);
  bool shape_ok = blowup > 50.0;
  std::printf("RESULT: %s — testing the rich classes explodes with "
              "transaction count while the\nconflict-based classes (the "
              "protocol-enforceable ones) stay constant-time.\n",
              shape_ok ? "shape reproduced" : "UNEXPECTED SHAPE");
  return shape_ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "np_scaling",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
