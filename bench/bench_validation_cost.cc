// Experiment E8 — validation-phase overhead (Section 5.1): the version-
// assignment search is exponential in the worst case, and the paper argues
// a heuristic scheme keeps it affordable — "even if substantial effort is
// expended in version selection, the avoidance of one long duration wait is
// likely to justify this overhead."
//
// We sweep the versions-per-entity count and the predicate size and compare
// the exhaustive cartesian search with the pruned (MRV + clause-pruning)
// search, reporting visited nodes and wall time.

#include <chrono>
#include <cstdio>

#include "common/random.h"
#include "predicate/assignment_search.h"

#include "bench_util.h"

namespace nonserial {
namespace {

// A chained predicate over `entities` entities: bounds on each entity plus
// (e_i <= e_{i+1} | e_i <= mid) linking clauses — representative of the
// design constraints in the protocol experiments.
Predicate ChainPredicate(int entities, Value mid) {
  Predicate p;
  for (EntityId e = 0; e < entities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, 100)}));
  }
  for (EntityId e = 0; e + 1 < entities; ++e) {
    p.AddClause(Clause({EntityVsEntity(e, CompareOp::kLe, e + 1),
                        EntityVsConst(e, CompareOp::kLe, mid)}));
  }
  return p;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run() {
  std::printf("Validation-phase cost: exhaustive vs pruned vs indexed "
              "version selection.\n(20 instances per row; nodes = "
              "assignments explored)\n\n");
  std::printf("%9s %9s | %14s %12s | %13s %10s | %13s %10s | %7s\n",
              "entities", "versions", "exhaust-nodes", "exhaust-us",
              "pruned-nodes", "pruned-us", "index-nodes", "index-us",
              "speedup");

  Rng rng(77);
  bool ok = true;
  for (int entities : {4, 6, 8}) {
    for (int versions : {2, 4, 8}) {
      Predicate predicate = ChainPredicate(entities, 55);
      int64_t ex_nodes = 0, pr_nodes = 0, ix_nodes = 0;
      int64_t ex_us = 0, pr_us = 0, ix_us = 0;
      int agree = 0;
      const int kTrials = 20;
      for (int trial = 0; trial < kTrials; ++trial) {
        std::vector<std::vector<Value>> candidates(entities);
        for (int e = 0; e < entities; ++e) {
          for (int v = 0; v < versions; ++v) {
            candidates[e].push_back(rng.UniformInt(0, 120));
          }
        }
        SearchStats ex_stats, pr_stats, ix_stats;
        int64_t t0 = NowUs();
        bool ex_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kExhaustive,
                                                 &ex_stats)
                            .has_value();
        int64_t t1 = NowUs();
        bool pr_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kPruned,
                                                 &pr_stats)
                            .has_value();
        int64_t t2 = NowUs();
        bool ix_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kIndexed,
                                                 &ix_stats)
                            .has_value();
        int64_t t3 = NowUs();
        ex_nodes += ex_stats.nodes_visited;
        pr_nodes += pr_stats.nodes_visited;
        ix_nodes += ix_stats.nodes_visited;
        ex_us += t1 - t0;
        pr_us += t2 - t1;
        ix_us += t3 - t2;
        agree += (ex_found == pr_found && pr_found == ix_found);
      }
      ok &= (agree == kTrials);
      double speedup =
          pr_nodes > 0 ? static_cast<double>(ex_nodes) /
                             static_cast<double>(pr_nodes)
                       : 0.0;
      std::printf("%9d %9d | %14lld %12lld | %13lld %10lld | %13lld %10lld"
                  " | %6.1fx%s\n",
                  entities, versions, static_cast<long long>(ex_nodes),
                  static_cast<long long>(ex_us),
                  static_cast<long long>(pr_nodes),
                  static_cast<long long>(pr_us),
                  static_cast<long long>(ix_nodes),
                  static_cast<long long>(ix_us), speedup,
                  agree == kTrials ? "" : "  DISAGREE");
    }
  }

  std::printf("\nRESULT: %s — both searches agree on satisfiability; the "
              "pruned search contains the\nexponential blowup the paper "
              "warns about (the 'heuristic based scheme' of Section 5.1).\n",
              ok ? "reproduced" : "DISAGREEMENT FOUND");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "validation_cost",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
