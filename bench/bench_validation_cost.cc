// Experiment E8 — validation-phase overhead (Section 5.1): the version-
// assignment search is exponential in the worst case, and the paper argues
// a heuristic scheme keeps it affordable — "even if substantial effort is
// expended in version selection, the avoidance of one long duration wait is
// likely to justify this overhead."
//
// We sweep the versions-per-entity count and the predicate size and compare
// the exhaustive cartesian search with the pruned (MRV + clause-pruning)
// search, reporting visited nodes and wall time.

// A second section measures the *repeated*-validation pattern of the CEP
// rescan loop: one entity's candidate list changes per round and the
// assignment is re-solved. The incremental path (delta-revalidation with
// memoized conjunct evaluation, predicate/eval_cache.h) is compared with
// the from-scratch search; `--cache=off` disables the incremental machinery
// for an apples-to-apples baseline run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>

#include "common/random.h"
#include "predicate/assignment_search.h"
#include "predicate/eval_cache.h"

#include "bench_util.h"

namespace nonserial {
namespace {

// A chained predicate over `entities` entities: bounds on each entity plus
// (e_i <= e_{i+1} | e_i <= mid) linking clauses — representative of the
// design constraints in the protocol experiments.
Predicate ChainPredicate(int entities, Value mid) {
  Predicate p;
  for (EntityId e = 0; e < entities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, 100)}));
  }
  for (EntityId e = 0; e + 1 < entities; ++e) {
    p.AddClause(Clause({EntityVsEntity(e, CompareOp::kLe, e + 1),
                        EntityVsConst(e, CompareOp::kLe, mid)}));
  }
  return p;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run() {
  std::printf("Validation-phase cost: exhaustive vs pruned vs indexed "
              "version selection.\n(20 instances per row; nodes = "
              "assignments explored)\n\n");
  std::printf("%9s %9s | %14s %12s | %13s %10s | %13s %10s | %7s\n",
              "entities", "versions", "exhaust-nodes", "exhaust-us",
              "pruned-nodes", "pruned-us", "index-nodes", "index-us",
              "speedup");

  Rng rng(77);
  bool ok = true;
  for (int entities : {4, 6, 8}) {
    for (int versions : {2, 4, 8}) {
      Predicate predicate = ChainPredicate(entities, 55);
      int64_t ex_nodes = 0, pr_nodes = 0, ix_nodes = 0;
      int64_t ex_us = 0, pr_us = 0, ix_us = 0;
      int agree = 0;
      const int kTrials = 20;
      for (int trial = 0; trial < kTrials; ++trial) {
        std::vector<std::vector<Value>> candidates(entities);
        for (int e = 0; e < entities; ++e) {
          for (int v = 0; v < versions; ++v) {
            candidates[e].push_back(rng.UniformInt(0, 120));
          }
        }
        SearchStats ex_stats, pr_stats, ix_stats;
        int64_t t0 = NowUs();
        bool ex_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kExhaustive,
                                                 &ex_stats)
                            .has_value();
        int64_t t1 = NowUs();
        bool pr_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kPruned,
                                                 &pr_stats)
                            .has_value();
        int64_t t2 = NowUs();
        bool ix_found = FindSatisfyingAssignment(predicate, candidates,
                                                 SearchMode::kIndexed,
                                                 &ix_stats)
                            .has_value();
        int64_t t3 = NowUs();
        ex_nodes += ex_stats.nodes_visited;
        pr_nodes += pr_stats.nodes_visited;
        ix_nodes += ix_stats.nodes_visited;
        ex_us += t1 - t0;
        pr_us += t2 - t1;
        ix_us += t3 - t2;
        agree += (ex_found == pr_found && pr_found == ix_found);
      }
      ok &= (agree == kTrials);
      double speedup =
          pr_nodes > 0 ? static_cast<double>(ex_nodes) /
                             static_cast<double>(pr_nodes)
                       : 0.0;
      std::printf("%9d %9d | %14lld %12lld | %13lld %10lld | %13lld %10lld"
                  " | %6.1fx%s\n",
                  entities, versions, static_cast<long long>(ex_nodes),
                  static_cast<long long>(ex_us),
                  static_cast<long long>(pr_nodes),
                  static_cast<long long>(pr_us),
                  static_cast<long long>(ix_nodes),
                  static_cast<long long>(ix_us), speedup,
                  agree == kTrials ? "" : "  DISAGREE");
    }
  }

  std::printf("\nRESULT: %s — both searches agree on satisfiability; the "
              "pruned search contains the\nexponential blowup the paper "
              "warns about (the 'heuristic based scheme' of Section 5.1).\n",
              ok ? "reproduced" : "DISAGREEMENT FOUND");
  return ok ? 0 : 1;
}

// The CEP rescan pattern: the same constraint is re-validated after a
// concurrent write changed one entity's allowable versions. From-scratch
// re-runs the full search every round; the incremental path pins the
// unchanged entities to the previous choice (DeltaRevalidate) and memoizes
// conjunct evaluations (EvalCache). Both must agree on satisfiability every
// round — and, when the cache is on, the incremental side must win by >= 2x
// (the PR's acceptance bar for this workload).
bool RunRepeatedValidation(bool cache_on, BenchReport* report) {
  std::printf("\nRepeated validation (CEP rescan pattern): one entity's "
              "candidates change per round.\nincremental = delta-"
              "revalidation with memoized conjuncts (%s); baseline = "
              "from-scratch.\n\n",
              cache_on ? "cache ON" : "cache OFF via --cache=off");
  std::printf("%9s %9s %7s | %11s %11s | %8s %9s %10s | %7s\n", "entities",
              "versions", "rounds", "scratch-us", "incr-us", "hit-rate",
              "fallbacks", "agreement", "speedup");

  Rng rng(123);
  bool ok = true;
  for (int entities : {12, 16}) {
    // Long version chains (high-churn entities) and a tight linking
    // constraint: the regime where re-validation is actually expensive.
    const int versions = 24;
    const int rounds = 400;
    Predicate predicate = ChainPredicate(entities, 20);
    std::vector<std::vector<Value>> candidates(entities);
    for (int e = 0; e < entities; ++e) {
      for (int v = 0; v < versions; ++v) {
        candidates[e].push_back(rng.UniformInt(0, 120));
      }
    }

    EvalCache cache(entities);
    CachedPredicate cached_predicate(predicate, &cache);
    const CachedPredicate* cached = cache_on ? &cached_predicate : nullptr;

    int64_t scratch_us = 0, incremental_us = 0;
    int agree = 0;
    DeltaStats delta;
    SearchStats scratch_stats, incremental_stats;
    std::optional<std::vector<int>> prev;
    for (int round = 0; round < rounds; ++round) {
      // A concurrent writer installed a new version of one entity.
      int e = rng.UniformInt(0, entities - 1);
      candidates[e][rng.UniformInt(0, versions - 1)] = rng.UniformInt(0, 120);
      if (cache_on) cache.BumpEntity(e);

      int64_t t0 = NowUs();
      std::optional<std::vector<int>> scratch = FindSatisfyingAssignment(
          predicate, candidates, SearchMode::kPruned, &scratch_stats);
      int64_t t1 = NowUs();
      std::optional<std::vector<int>> incremental;
      if (cache_on && prev.has_value()) {
        incremental =
            DeltaRevalidate(predicate, candidates, *prev, {e},
                            SearchMode::kPruned, &incremental_stats, cached,
                            &delta);
      } else {
        incremental = FindSatisfyingAssignment(
            predicate, candidates, SearchMode::kPruned, &incremental_stats,
            cached);
      }
      int64_t t2 = NowUs();
      scratch_us += t1 - t0;
      incremental_us += t2 - t1;
      agree += scratch.has_value() == incremental.has_value();
      prev = std::move(incremental);
    }

    double speedup = incremental_us > 0 ? static_cast<double>(scratch_us) /
                                              static_cast<double>(incremental_us)
                                        : 0.0;
    double hit_rate = cache.HitRate();
    bool row_ok = agree == rounds && (!cache_on || speedup >= 2.0);
    ok &= row_ok;
    std::printf("%9d %9d %7d | %11lld %11lld | %7.1f%% %9lld %7d/%-3d | "
                "%6.1fx%s\n",
                entities, versions, rounds,
                static_cast<long long>(scratch_us),
                static_cast<long long>(incremental_us), 100.0 * hit_rate,
                static_cast<long long>(delta.delta_fallbacks), agree, rounds,
                speedup, row_ok ? "" : "  FAIL");

    if (report != nullptr) {
      Json row = Json::Object();
      row["name"] = "repeated_validation";
      row["entities"] = entities;
      row["versions"] = versions;
      row["rounds"] = rounds;
      row["cache"] = cache_on ? "on" : "off";
      row["scratch_us"] = scratch_us;
      row["incremental_us"] = incremental_us;
      row["cache_speedup"] = speedup;
      row["cache_hit_rate"] = hit_rate;
      row["delta_rescans"] = delta.delta_solves;
      row["delta_fallbacks"] = delta.delta_fallbacks;
      row["scratch_nodes"] = scratch_stats.nodes_visited;
      row["incremental_nodes"] = incremental_stats.nodes_visited;
      row["agreement"] = agree == rounds;
      report->AddResult(std::move(row));
    }
  }

  std::printf("\nRESULT: %s — incremental and from-scratch validation agree "
              "on every round%s.\n",
              ok ? "reproduced" : "FAILED",
              cache_on ? "; the incremental path clears the 2x bar" : "");
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  bool cache_on = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache=off") == 0) cache_on = false;
  }
  return nonserial::BenchMain(
      argc, argv, "validation_cost",
      [cache_on](const nonserial::BenchOptions&,
                 nonserial::BenchReport* report) {
        report->config()["cache"] = cache_on ? "on" : "off";
        bool ok = nonserial::Run() == 0;
        ok &= nonserial::RunRepeatedValidation(cache_on, report);
        return ok;
      });
}
