// Experiment E5 (+ E11) — the paper's motivating claim (Sections 1, 2.4, 5):
// for long-duration transactions, serializability-enforcing protocols
// impose long waits (2PL) or abort expensive work (timestamp ordering),
// while the Correct Execution Protocol admits non-serializable but correct
// executions with little waiting and little wasted work.
//
// Sweep: transaction think time (the "long duration" knob) on a cooperative
// design workload with a partial order among designers. For every run of
// CEP the emitted history is re-verified against the Section 3 model
// (Theorem 2); the "verified" column must read "ok".

#include <cstdio>

#include "core/database.h"
#include "workload/generators.h"

#include "bench_util.h"

namespace nonserial {
namespace {

int Run() {
  std::printf("Long-duration transactions: CEP vs serializable baselines.\n");
  std::printf("Workload: 16 designers, 24 entities, 4 conjuncts, "
              "cooperation edges p=0.3.\n\n");
  std::printf("%10s %-8s | %9s %10s %8s %10s %11s | %s\n", "think", "proto",
              "makespan", "blocked", "aborts", "wasted-ops", "throughput",
              "verified");

  bool all_verified = true;
  bool shape_ok = true;
  for (SimTime think : {0, 50, 200, 800, 3200}) {
    DesignWorkloadParams params;
    params.num_txs = 16;
    params.num_entities = 24;
    params.num_conjuncts = 4;
    params.reads_per_tx = 4;
    params.think_time = think;
    params.cross_group_fraction = 0.15;
    params.precedence_prob = 0.3;
    params.relational_clause_prob = 0.3;
    params.arrival_spacing = 10;
    params.seed = 99;
    SimWorkload workload = MakeDesignWorkload(params);
    Predicate constraint = WorkloadConstraint(workload);

    SimTime cep_blocked = 0, s2pl_blocked = 0;
    for (ProtocolKind kind :
         {ProtocolKind::kCep, ProtocolKind::kStrict2pl,
          ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto}) {
      RunReport report = RunWorkload(workload, kind, constraint);
      const SimResult& r = report.result;
      const char* verified = "-";
      if (kind == ProtocolKind::kCep) {
        verified = report.verification.ok() ? "ok" : "FAILED";
        all_verified &= report.verification.ok();
        cep_blocked = r.total_blocked;
      }
      if (kind == ProtocolKind::kStrict2pl) s2pl_blocked = r.total_blocked;
      std::printf("%10lld %-8s | %9lld %10lld %8lld %10lld %11.3f | %s\n",
                  static_cast<long long>(think), report.protocol.c_str(),
                  static_cast<long long>(r.makespan),
                  static_cast<long long>(r.total_blocked),
                  static_cast<long long>(r.total_aborts),
                  static_cast<long long>(r.total_wasted_ops), r.Throughput(),
                  verified);
      if (!r.all_committed) {
        std::printf("    !! %s left transactions uncommitted\n",
                    report.protocol.c_str());
        shape_ok = false;
      }
    }
    // The headline shape: once transactions are long, CEP's total waiting is
    // far below strict 2PL's.
    if (think >= 200 && cep_blocked * 2 > s2pl_blocked) {
      std::printf("    !! expected CEP blocked << S2PL blocked at think=%lld"
                  " (got %lld vs %lld)\n",
                  static_cast<long long>(think),
                  static_cast<long long>(cep_blocked),
                  static_cast<long long>(s2pl_blocked));
      shape_ok = false;
    }
    std::printf("\n");
  }

  std::printf("RESULT: %s; CEP histories %s the Theorem 2 check.\n",
              shape_ok ? "long-transaction waiting shape reproduced"
                       : "SHAPE NOT REPRODUCED",
              all_verified ? "all pass" : "FAIL");
  return (shape_ok && all_verified) ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "protocol_longtx",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
