// Experiment E6 — contention behaviour: fixed long transactions, shrinking
// database (and optional hot-spot skew) to raise the conflict rate. The
// baselines degrade (waits for 2PL, aborted work for MVTO) much faster than
// CEP, whose multiversion reads tolerate concurrent writers.
//
// --json: print the shared run-report document (common/report.h) with one
// row per (point, protocol). ops_per_sec is committed transactions per
// wall-clock second of simulation (the tick simulator is single-threaded,
// so threads is 1); makespan/blocked/aborts are simulated ticks.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "core/database.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

bool Run(const BenchOptions&, BenchReport* out) {
  std::printf("Contention sweep: 16 long transactions (think=400) over a "
              "shrinking database.\n\n");
  std::printf("%9s %6s %-8s | %9s %10s %8s %10s | %s\n", "entities", "zipf",
              "proto", "makespan", "blocked", "aborts", "wasted-ops",
              "verified");

  bool ok = true;
  struct Point {
    int entities;
    double theta;
  };
  for (const Point& point : {Point{64, 0.0}, Point{24, 0.0}, Point{12, 0.0},
                             Point{12, 0.9}, Point{8, 0.9}}) {
    DesignWorkloadParams params;
    params.num_txs = 16;
    params.num_entities = point.entities;
    params.num_conjuncts = 4;
    params.reads_per_tx = 4;
    params.think_time = 400;
    params.cross_group_fraction = 0.2;
    params.precedence_prob = 0.2;
    params.hot_theta = point.theta;
    params.arrival_spacing = 10;
    params.seed = 1234;
    SimWorkload workload = MakeDesignWorkload(params);
    Predicate constraint = WorkloadConstraint(workload);

    SimTime cep_blocked = 0, s2pl_blocked = 0;
    for (ProtocolKind kind :
         {ProtocolKind::kCep, ProtocolKind::kStrict2pl,
          ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto}) {
      auto wall_start = std::chrono::steady_clock::now();
      RunReport report = RunWorkload(workload, kind, constraint);
      double wall_sec = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
      const SimResult& r = report.result;
      const char* verified = "-";
      if (kind == ProtocolKind::kCep) {
        verified = report.verification.ok() ? "ok" : "FAILED";
        ok &= report.verification.ok();
        cep_blocked = r.total_blocked;
      }
      if (kind == ProtocolKind::kStrict2pl) s2pl_blocked = r.total_blocked;
      {
        Json row = Json::Object();
        row["name"] = StrCat("contention_e", point.entities, "_z",
                             point.theta, "_", report.protocol);
        row["threads"] = 1;
        row["ops_per_sec"] = wall_sec > 0 ? r.committed_count / wall_sec : 0.0;
        row["protocol"] = report.protocol;
        row["entities"] = point.entities;
        row["zipf_theta"] = point.theta;
        row["makespan"] = r.makespan;
        row["blocked"] = r.total_blocked;
        row["aborts"] = r.total_aborts;
        row["wasted_ops"] = r.total_wasted_ops;
        out->AddResult(std::move(row));
      }
      std::printf("%9d %6.1f %-8s | %9lld %10lld %8lld %10lld | %s\n",
                  point.entities, point.theta, report.protocol.c_str(),
                  static_cast<long long>(r.makespan),
                  static_cast<long long>(r.total_blocked),
                  static_cast<long long>(r.total_aborts),
                  static_cast<long long>(r.total_wasted_ops), verified);
      if (!r.all_committed) {
        std::printf("    !! %s committed only %d/%zu\n",
                    report.protocol.c_str(), r.committed_count, r.tx.size());
        ok = false;
      }
    }
    if (cep_blocked > s2pl_blocked) {
      std::printf("    !! CEP blocked more than S2PL under contention\n");
      ok = false;
    }
    std::printf("\n");
  }

  std::printf("RESULT: %s — CEP's waiting stays bounded by the short write "
              "locks while 2PL's grows\nwith contention x duration.\n",
              ok ? "shape reproduced" : "SHAPE NOT REPRODUCED");
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "protocol_contention",
                              nonserial::Run);
}
