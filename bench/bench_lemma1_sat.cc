// Experiment E3 — Lemma 1: one-transaction version correctness is
// NP-complete, shown constructively. Random 3-SAT formulas are pushed
// through the paper's reduction (entities = variables, database state
// S = {all-zeros, all-ones}, I_t = the formula with literals as equality
// atoms); a DPLL solver on the formula and the version-assignment search on
// the reduced instance must agree on every instance.
//
// The sweep crosses the 3-SAT phase transition (clause/variable ratio
// ~4.27), where both solvers do real search.

#include <chrono>
#include <cstdio>

#include "common/random.h"
#include "model/state.h"
#include "model/version_search.h"
#include "predicate/sat.h"

#include "bench_util.h"

namespace nonserial {
namespace {

int Run() {
  std::printf("Lemma 1 reproduction: SAT <-> one-transaction version "
              "correctness.\n\n");
  std::printf("%6s %8s %6s | %6s %6s %8s | %10s %10s | %s\n", "vars",
              "clauses", "ratio", "sat", "unsat", "agree", "dpll(us)",
              "search(us)", "verdict");

  Rng rng(42);
  bool all_agree = true;
  for (int vars : {8, 12, 16, 20}) {
    for (double ratio : {2.0, 3.0, 4.27, 5.5, 7.0}) {
      int clauses = static_cast<int>(vars * ratio);
      int sat_count = 0, unsat_count = 0, agree = 0;
      const int kTrials = 40;
      int64_t dpll_us = 0, search_us = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        BoolFormula f = RandomKSat(vars, clauses, 3, &rng);

        auto t0 = std::chrono::steady_clock::now();
        bool sat = SolveSat(f).has_value();
        auto t1 = std::chrono::steady_clock::now();

        // The reduction: E = U, S = {all-0, all-1}, I_t = C.
        DatabaseState db(vars);
        db.Add(UniqueState(vars, 0));
        db.Add(UniqueState(vars, 1));
        Predicate reduced = FormulaToPredicate(f);
        auto t2 = std::chrono::steady_clock::now();
        bool version_correct = OneTransactionVersionCorrectness(db, reduced);
        auto t3 = std::chrono::steady_clock::now();

        dpll_us += std::chrono::duration_cast<std::chrono::microseconds>(
                       t1 - t0)
                       .count();
        search_us += std::chrono::duration_cast<std::chrono::microseconds>(
                         t3 - t2)
                         .count();
        sat_count += sat;
        unsat_count += !sat;
        agree += (sat == version_correct);
      }
      bool ok = agree == kTrials;
      all_agree &= ok;
      std::printf("%6d %8d %6.2f | %6d %6d %7d/%d | %10lld %10lld | %s\n",
                  vars, clauses, ratio, sat_count, unsat_count, agree,
                  kTrials, static_cast<long long>(dpll_us),
                  static_cast<long long>(search_us),
                  ok ? "agree" : "DISAGREE");
    }
  }

  std::printf("\nRESULT: %s — the version-assignment search decides exactly "
              "the satisfiable instances,\nas Lemma 1's reduction demands.\n",
              all_agree ? "100% agreement" : "DISAGREEMENT FOUND");
  return all_agree ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "lemma1_sat",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
