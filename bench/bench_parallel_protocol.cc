// Concurrent engine benchmark: N client threads drive the contention
// workload through one shared CorrectExecutionProtocol instance. Think
// times are *real* sleeps (the paper's human-paced CAD clients), so the
// win from concurrency is overlapped client latency — a single-threaded
// driver serializes every think, a 4-thread driver overlaps them. The run
// fails unless 4 workers deliver at least 2x the single-worker throughput
// and the emitted history passes the Section 3 checker.
//
// --json: emit one machine-readable line per configuration
// ({"name":...,"threads":...,"ops_per_sec":...}) instead of the report;
// scripts/ci.sh collects these into BENCH_parallel.json.

#include <cstdio>
#include <cstring>

#include "core/verify.h"
#include "sim/parallel_driver.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

SimWorkload ContentionWorkload() {
  DesignWorkloadParams params;
  params.num_txs = 16;
  params.num_entities = 24;
  params.num_conjuncts = 4;
  params.reads_per_tx = 4;
  params.think_time = 100;  // Ticks; scaled to real µs by the driver.
  params.cross_group_fraction = 0.2;
  params.precedence_prob = 0.2;
  params.hot_theta = 0.5;
  params.seed = 1234;
  return MakeDesignWorkload(params);
}

struct Outcome {
  double commits_per_sec = 0;
  ParallelRunResult result;
  bool verified = false;
};

Outcome RunWith(const SimWorkload& workload, int threads,
                ProtocolMetrics* metrics) {
  ParallelDriverConfig config;
  config.num_threads = threads;
  config.us_per_tick = 100;  // 100-tick thinks become 10ms client latency.
  config.max_restarts = 200;
  config.max_wall_ms = 120'000;
  config.protocol.metrics = metrics;
  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  Outcome outcome;
  outcome.result = driver.Run(workload, &store, &cep);
  outcome.commits_per_sec = outcome.result.CommitsPerSecond();
  outcome.verified =
      VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload))
          .ok();
  return outcome;
}

int Run(bool json) {
  if (!json) {
    std::printf("Parallel protocol engine: 16 long transactions "
                "(think=10ms real) on 24 entities, CEP.\n\n");
    std::printf("%8s | %9s %8s %7s %9s | %s\n", "threads", "commits/s",
                "commits", "aborts", "wall-ms", "verified");
  }

  SimWorkload workload = ContentionWorkload();
  bool ok = true;
  double single = 0, quad = 0;
  for (int threads : {1, 2, 4}) {
    ProtocolMetrics metrics;
    Outcome outcome = RunWith(workload, threads, &metrics);
    ok &= outcome.verified;
    ok &= !outcome.result.watchdog_expired;
    ok &= outcome.result.committed_count > 0;
    if (threads == 1) single = outcome.commits_per_sec;
    if (threads == 4) quad = outcome.commits_per_sec;
    if (json) {
      std::printf(
          "{\"name\": \"parallel_protocol\", \"threads\": %d, "
          "\"ops_per_sec\": %.2f}\n",
          threads, outcome.commits_per_sec);
      continue;
    }
    std::printf("%8d | %9.1f %8d %7lld %9lld | %s\n", threads,
                outcome.commits_per_sec, outcome.result.committed_count,
                static_cast<long long>(outcome.result.total_aborts),
                static_cast<long long>(outcome.result.wall_micros / 1000),
                outcome.verified ? "ok" : "FAILED");
    if (threads == 4) {
      std::printf("\nEngine metrics at 4 threads:\n%s\n",
                  metrics.Summary().c_str());
    }
  }

  double speedup = single > 0 ? quad / single : 0;
  ok &= speedup >= 2.0;
  if (!json) {
    std::printf("4-thread speedup over single-threaded driver: %.2fx "
                "(required: >= 2x)\n", speedup);
    std::printf("\n%s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return nonserial::Run(json);
}
