// Concurrent engine benchmark: N client threads drive the contention
// workload through one shared CorrectExecutionProtocol instance. Think
// times are *real* sleeps (the paper's human-paced CAD clients), so the
// win from concurrency is overlapped client latency — a single-threaded
// driver serializes every think, a 4-thread driver overlaps them. The run
// fails unless 4 workers deliver at least 2x the single-worker throughput
// and the emitted history passes the Section 3 checker.
//
// --json: print the shared run-report document (schema in common/report.h)
// with one throughput row per thread count, the 4-thread engine metrics,
// and the per-protocol trace-event tallies; scripts/ci.sh saves it as
// REPORT_parallel.json.
//
// --trace FILE: additionally run the workload in chaos mode (crash-kill +
// WAL-recovery cycles, abort storms) with span recording and write the
// phase timeline to FILE in Chrome trace_event format — load it in
// about:tracing to see validate/execute/terminate spans per transaction,
// including the attempts that died to injected faults.

#include <cstdio>

#include "bench_util.h"
#include "core/verify.h"
#include "predicate/eval_cache.h"
#include "sim/parallel_driver.h"
#include "workload/generators.h"

namespace nonserial {
namespace {

SimWorkload ContentionWorkload() {
  DesignWorkloadParams params;
  params.num_txs = 16;
  params.num_entities = 24;
  params.num_conjuncts = 4;
  params.reads_per_tx = 4;
  params.think_time = 100;  // Ticks; scaled to real µs by the driver.
  params.cross_group_fraction = 0.2;
  params.precedence_prob = 0.2;
  params.hot_theta = 0.5;
  params.seed = 1234;
  return MakeDesignWorkload(params);
}

ParallelDriverConfig BaseConfig(int threads, ProtocolMetrics* metrics) {
  ParallelDriverConfig config;
  config.num_threads = threads;
  config.us_per_tick = 100;  // 100-tick thinks become 10ms client latency.
  config.max_restarts = 200;
  config.max_wall_ms = 120'000;
  config.protocol.metrics = metrics;
  return config;
}

struct Outcome {
  double commits_per_sec = 0;
  ParallelRunResult result;
  bool verified = false;
};

Outcome RunWith(const SimWorkload& workload, int threads,
                ProtocolMetrics* metrics, TraceSink* observer,
                EvalCache* cache) {
  ParallelDriverConfig config = BaseConfig(threads, metrics);
  config.observer = observer;
  config.protocol.eval_cache = cache;
  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  Outcome outcome;
  outcome.result = driver.Run(workload, &store, &cep);
  outcome.commits_per_sec = outcome.result.CommitsPerSecond();
  // The verifier shares the engine's cache: the post-hoc correctness check
  // re-probes evaluations validation already paid for.
  outcome.verified =
      VerifyCepHistory(workload, *cep, *store, WorkloadConstraint(workload),
                       cache)
          .ok();
  return outcome;
}

/// Write-heavy, zero-think workload for the durable-commit legs: with no
/// client latency to overlap, throughput is limited by the commit path
/// itself, so the comparison isolates what the WAL's durability mode costs.
SimWorkload DurableWorkload() {
  DesignWorkloadParams params;
  params.num_txs = 192;
  params.num_entities = 96;
  params.num_conjuncts = 2;
  params.reads_per_tx = 2;
  params.think_time = 0;
  params.arrival_spacing = 0;
  params.precedence_prob = 0.05;
  params.hot_theta = 0.3;
  params.seed = 77;
  return MakeDesignWorkload(params);
}

/// Simulated storage-barrier latency per device flush. Sync mode pays it
/// per commit record inside the log mutex (the single-global-lock
/// baseline); group commit pays it once per batch.
constexpr int64_t kFlushUs = 200;

struct DurableOutcome {
  double commits_per_sec = 0;
  bool ok = false;
  ProtocolMetrics metrics;
};

void RunDurable(const SimWorkload& workload, int threads, bool group_commit,
                DurableOutcome* out) {
  WriteAheadLog wal(workload.initial);
  ParallelDriverConfig config;
  config.num_threads = threads;
  config.us_per_tick = 0;
  config.max_restarts = 400;
  config.max_wall_ms = 120'000;
  config.protocol.metrics = &out->metrics;
  config.wal = &wal;
  config.wal_group_commit = group_commit;
  config.wal_flush_us = kFlushUs;
  ParallelDriver driver(config);
  std::shared_ptr<VersionStore> store;
  std::shared_ptr<CorrectExecutionProtocol> cep;
  ParallelRunResult result = driver.Run(workload, &store, &cep);
  out->commits_per_sec = result.CommitsPerSecond();
  // Durability bar: everything the run acked must be in the durable image.
  RecoveryResult rec = wal.Recover();
  out->ok = !result.watchdog_expired && result.committed_count > 0 &&
            rec.status.ok() &&
            static_cast<int>(rec.committed.size()) == result.committed_count &&
            rec.store->LatestCommittedSnapshot() ==
                store->LatestCommittedSnapshot() &&
            VerifyCepHistory(workload, *cep, *store,
                             WorkloadConstraint(workload))
                .ok();
}

/// Durable-throughput legs: commit ops/sec with the WAL attached and a
/// 200µs simulated flush per barrier. The gate (ISSUE 6): group commit at
/// 8 threads must deliver >= 2x the sync (flush-per-commit) baseline.
bool RunDurableLegs(const SimWorkload& workload, BenchReport* report) {
  std::printf("\nDurable commits (WAL attached, %lldus device flush):\n",
              static_cast<long long>(kFlushUs));
  std::printf("%8s %6s | %9s %8s %8s %7s | %s\n", "mode", "thr", "commits/s",
              "batches", "flushes", "stalls", "durable+verified");

  bool ok = true;
  double sync8 = 0, group8 = 0;
  auto emit = [&](const char* mode, int threads, const DurableOutcome& o) {
    std::printf("%8s %6d | %9.1f %8lld %8lld %7lld | %s\n", mode, threads,
                o.commits_per_sec,
                static_cast<long long>(o.metrics.group_commit_batches.value()),
                static_cast<long long>(o.metrics.wal_device_flushes.value()),
                static_cast<long long>(o.metrics.group_commit_stalls.value()),
                o.ok ? "ok" : "FAILED");
    Json row = Json::Object();
    row["name"] = std::string("durable_") + mode;
    row["threads"] = threads;
    row["ops_per_sec"] = o.commits_per_sec;
    Json& group = row["group_commit"];
    group["batches"] = o.metrics.group_commit_batches.value();
    group["frames"] = o.metrics.group_commit_frames.value();
    group["commits"] = o.metrics.group_commit_commits.value();
    group["stalls"] = o.metrics.group_commit_stalls.value();
    group["failed_acks"] = o.metrics.group_commit_failed_acks.value();
    group["device_flushes"] = o.metrics.wal_device_flushes.value();
    report->AddResult(std::move(row));
  };

  {
    DurableOutcome o;
    RunDurable(workload, 8, /*group_commit=*/false, &o);
    ok &= o.ok;
    sync8 = o.commits_per_sec;
    emit("sync", 8, o);
  }
  for (int threads : {8, 16, 32}) {
    DurableOutcome o;
    RunDurable(workload, threads, /*group_commit=*/true, &o);
    ok &= o.ok;
    if (threads == 8) group8 = o.commits_per_sec;
    emit("group", threads, o);
  }

  double speedup = sync8 > 0 ? group8 / sync8 : 0;
  report->config()["durable_speedup_8t"] = speedup;
  std::printf("group-commit speedup over flush-per-commit at 8 threads: "
              "%.2fx (required: >= 2x)\n", speedup);
  ok &= speedup >= 2.0;
  return ok;
}

/// The README's about:tracing story: a chaos run (crash-kill cycles plus
/// abort storms) with every phase span on one shared timeline.
bool RunChaosTrace(const SimWorkload& workload, const std::string& path,
                   BenchReport* report) {
  ProtocolMetrics metrics;
  SpanTimeline timeline;
  ParallelDriverConfig config = BaseConfig(4, &metrics);
  config.timeline = &timeline;
  // Faster clock than the throughput runs: 1ms thinks make a whole attempt
  // ~5ms, so the 2-20ms crash windows leave durable work behind and the
  // final cycle finishes against the storm (at 10ms thinks the default
  // storm of 2 aborts/ms kills every attempt before it can commit).
  config.us_per_tick = 10;
  config.chaos.enabled = true;
  config.chaos.crash_cycles = 3;
  config.chaos.abort_storm_interval_us = 5'000;
  config.chaos.aborts_per_storm = 1;
  ParallelDriver driver(config);
  ChaosRunResult chaos = driver.RunChaos(workload);
  if (!WriteTraceFile(path, timeline)) {
    std::fprintf(stderr, "cannot write trace file %s\n", path.c_str());
    return false;
  }
  std::printf("\nchaos trace: %zu spans over %zu crash cycles, %d/%zu "
              "committed -> %s\n",
              timeline.size(), chaos.cycles.size(),
              chaos.final_result.committed_count, workload.txs.size(),
              path.c_str());
  // The throughput runs above never crash, so the `metrics` section's
  // recovery counters are all zero there; this row carries the chaos
  // run's actual recovery numbers into the report.
  Json row = Json::Object();
  row["name"] = "chaos_recovery";
  row["crash_restarts"] = metrics.crash_restarts.value();
  row["recovered_txs"] = metrics.recovered_txs.value();
  row["frames_scanned"] = metrics.recovery_frames_scanned.value();
  row["frames_truncated"] = metrics.recovery_frames_truncated.value();
  row["frames_salvaged"] = metrics.recovery_frames_salvaged.value();
  row["checkpoint_compactions"] = metrics.checkpoint_compactions.value();
  report->AddResult(std::move(row));
  // The final uninterrupted cycle must finish the workload; transactions
  // recovered durable from the WAL in earlier cycles count as committed.
  return chaos.final_result.all_committed &&
         !chaos.final_result.watchdog_expired;
}

bool Run(const BenchOptions& options, BenchReport* report) {
  std::printf("Parallel protocol engine: 16 long transactions "
              "(think=10ms real) on 24 entities, CEP.\n\n");
  std::printf("%8s | %9s %8s %7s %9s | %s\n", "threads", "commits/s",
              "commits", "aborts", "wall-ms", "verified");

  SimWorkload workload = ContentionWorkload();
  report->config()["txs"] = static_cast<int64_t>(workload.txs.size());
  report->config()["entities"] =
      static_cast<int64_t>(workload.initial.size());
  report->config()["protocol"] = "CEP";

  TraceRecorder trace;
  bool ok = true;
  double single = 0, quad = 0;
  for (int threads : {1, 2, 4}) {
    ProtocolMetrics metrics;
    // Fresh per configuration so the attached counters describe one run.
    EvalCache cache(static_cast<int>(workload.initial.size()));
    // Record trace events only for the 4-thread run so the tallies
    // describe one configuration, not a mixture.
    Outcome outcome = RunWith(workload, threads, &metrics,
                              threads == 4 ? &trace : nullptr, &cache);
    ok &= outcome.verified;
    ok &= !outcome.result.watchdog_expired;
    ok &= outcome.result.committed_count > 0;
    if (threads == 1) single = outcome.commits_per_sec;
    if (threads == 4) quad = outcome.commits_per_sec;
    report->AddThroughput("parallel_protocol", threads,
                          outcome.commits_per_sec);
    std::printf("%8d | %9.1f %8d %7lld %9lld | %s\n", threads,
                outcome.commits_per_sec, outcome.result.committed_count,
                static_cast<long long>(outcome.result.total_aborts),
                static_cast<long long>(outcome.result.wall_micros / 1000),
                outcome.verified ? "ok" : "FAILED");
    if (threads == 4) {
      std::printf("\nEngine metrics at 4 threads:\n%s\n",
                  metrics.Summary().c_str());
      EvalCache::Stats cache_stats = cache.stats();
      std::printf("eval cache at 4 threads: %.1f%% hit rate (%lld hits, "
                  "%lld misses, %lld invalidations)\n",
                  100.0 * cache.HitRate(),
                  static_cast<long long>(cache_stats.hits),
                  static_cast<long long>(cache_stats.misses),
                  static_cast<long long>(cache_stats.invalidations));
      report->config()["cache_hit_rate"] = cache.HitRate();
      report->AttachMetrics(metrics);
      report->AttachEvents(trace);
    }
  }

  double speedup = single > 0 ? quad / single : 0;
  ok &= speedup >= 2.0;
  report->config()["speedup_4t"] = speedup;
  std::printf("4-thread speedup over single-threaded driver: %.2fx "
              "(required: >= 2x)\n", speedup);

  ok &= RunDurableLegs(DurableWorkload(), report);

  if (!options.trace_path.empty()) {
    ok &= RunChaosTrace(workload, options.trace_path, report);
  }

  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "parallel_protocol", nonserial::Run);
}
