// Experiment E16 — the cache-native predicate-evaluation hot path.
//
// The validation pipeline is gather-candidates -> evaluate-conjuncts. The
// seed implementation materialized it as: copy each version chain
// (ChainSnapshot), dedup candidates by rescanning the output vector
// (O(states²) std::find), one heap vector per entity, then one memoized
// EvalClause probe per candidate — a pointer-chasing, lock-per-probe walk.
// The cache-native path keeps versions in flat slabs (ForEachVersion walks
// them in place), builds ONE columnar candidate arena, and evaluates each
// conjunct over the whole contiguous stripe at once (EvalClauseStripe: one
// fingerprint pass, one lock per shard, one auto-vectorized compare loop).
//
// Leg A ("seed_path") reimplements the seed pipeline inline against the
// same store — gather AND memo, since the shipped EvalCache no longer
// contains the seed's unordered_map internals; leg B ("flat_path") is the
// shipped code. Both must produce byte-identical candidate lists and truth
// bits (differential assert), and the miss path — every probe evaluates,
// the regime of a first validation or a post-invalidation rescan — must
// clear a >= 3x speedup on the dense-entity workload below (the PR's
// acceptance bar).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "predicate/batch_eval.h"
#include "predicate/candidate_buffer.h"
#include "predicate/eval_cache.h"
#include "storage/version_store.h"

#include "bench_util.h"

namespace nonserial {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Bounds per entity plus chained linking clauses (the protocol experiments'
// constraint shape).
Predicate ChainPredicate(int entities, Value mid) {
  Predicate p;
  for (EntityId e = 0; e < entities; ++e) {
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kLe, 1 << 20)}));
  }
  for (EntityId e = 0; e + 1 < entities; ++e) {
    p.AddClause(Clause({EntityVsEntity(e, CompareOp::kLe, e + 1),
                        EntityVsConst(e, CompareOp::kLe, mid)}));
  }
  return p;
}

// Leg A, stage 1: the seed candidate gather — chain copies plus the
// quadratic first-seen dedup CandidateValues used to do.
std::vector<std::vector<Value>> SeedGather(const VersionStore& store) {
  std::vector<std::vector<Value>> out;
  out.reserve(store.num_entities());
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    std::vector<Value> candidates;
    for (const Version& v : store.ChainSnapshot(e)) {
      if (!v.committed || v.dead) continue;
      if (std::find(candidates.begin(), candidates.end(), v.value) ==
          candidates.end()) {
        candidates.push_back(v.value);
      }
    }
    out.push_back(std::move(candidates));
  }
  return out;
}

// Leg B, stage 1: the flat gather — in-place chain walk into one columnar
// arena, hash-set dedup (first-seen order, same contract).
void FlatGather(const VersionStore& store, CandidateBuffer* out,
                std::vector<uint8_t>* seen, Value value_bound) {
  out->Reset();
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    std::fill(seen->begin(), seen->end(), 0);
    store.ForEachVersion(e, [&](const Version& v, int) {
      if (!v.committed || v.dead) return;
      uint8_t& mark = (*seen)[static_cast<size_t>(v.value)];
      if (mark) return;
      mark = 1;
      out->Push(v.value);
    });
    out->FinishEntity();
  }
  (void)value_bound;
}

// Leg A, stage 2: the seed memo — sharded mutex + unordered_map keyed
// exactly as the seed EvalCache was (same FNV fingerprint, same avalanched
// key, shard chosen by key): one lock round-trip per candidate probe, one
// more per insert, a node allocation per inserted entry. Epoch bookkeeping
// is omitted (no invalidations happen in this workload), which only makes
// this baseline FASTER than the real seed — conservative for the gate.
class SeedMemo {
 public:
  bool EvalClause(uint64_t clause_hash, const Clause& clause,
                  const std::vector<EntityId>& entities,
                  const ValueVector& values) {
    uint64_t fingerprint = fnv::kOffset;
    for (EntityId e : entities) {
      fingerprint = fnv::Mix(fingerprint, static_cast<uint64_t>(values[e]));
    }
    uint64_t key = fnv::Avalanche(clause_hash ^ (fingerprint * fnv::kPrime));
    Shard& shard = shards_[key % kNumShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.table.find(key);
      if (it != shard.table.end() && it->second.clause_hash == clause_hash &&
          it->second.fingerprint == fingerprint) {
        return it->second.result;
      }
    }
    bool result = clause.Eval(values);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.table[key] = Entry{clause_hash, fingerprint, result};
    }
    return result;
  }

  void Clear() {
    for (Shard& s : shards_) s.table.clear();
  }

 private:
  struct Entry {
    uint64_t clause_hash = 0;
    uint64_t fingerprint = 0;
    bool result = false;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> table;
  };
  static constexpr int kNumShards = 16;
  Shard shards_[kNumShards];
};

struct LegResult {
  int64_t us = 0;
  int64_t evals = 0;       // Conjunct-candidate evaluations.
  std::vector<uint8_t> bits;  // Truth bits, clause-major then candidate.
};

int Run(BenchReport* report) {
  constexpr int kEntities = 16;
  constexpr int kVersionsPerEntity = 96;
  constexpr int kRounds = 300;
  constexpr Value kValueBound = 4096;

  // Dense-entity store: long committed chains, values mostly distinct so
  // the candidate stripes stay long after dedup.
  Rng rng(2026);
  VersionStore store(ValueVector(kEntities, 0));
  for (int v = 0; v < kVersionsPerEntity; ++v) {
    for (EntityId e = 0; e < kEntities; ++e) {
      store.Append(e, rng.UniformInt(0, kValueBound - 1), /*writer=*/v);
    }
    store.CommitWriter(v);
  }
  Predicate predicate = ChainPredicate(kEntities, kValueBound / 2);

  // Base values: every entity at its latest committed value; each clause is
  // striped over its highest entity's candidates — the exact shape of one
  // batched pruning step at full assignment depth.
  ValueVector base = store.LatestCommittedSnapshot();

  SeedMemo seed_memo;
  EvalCache flat_cache(kEntities);
  CachedPredicate flat_cached(predicate, &flat_cache);
  std::vector<uint64_t> clause_hashes;
  for (const Clause& clause : predicate.clauses()) {
    clause_hashes.push_back(CachedPredicate::HashClause(clause));
  }

  LegResult seed, flat;
  std::vector<uint8_t> seen(static_cast<size_t>(kValueBound), 0);
  CandidateBuffer buffer;
  std::vector<uint8_t> stripe_out;

  // Leg A: seed pipeline. Clear() per round keeps every probe on the miss
  // path (first-validation / post-invalidation regime).
  for (int round = 0; round < kRounds; ++round) {
    seed_memo.Clear();
    int64_t t0 = NowUs();
    std::vector<std::vector<Value>> candidates = SeedGather(store);
    std::vector<uint8_t>& bits = seed.bits;
    if (round == 0) bits.clear();
    size_t cursor = 0;
    for (int c = 0; c < flat_cached.num_clauses(); ++c) {
      EntityId striped = flat_cached.ClauseEntities(c).back();
      ValueVector values = base;
      for (Value v : candidates[striped]) {
        values[striped] = v;
        bool result =
            seed_memo.EvalClause(clause_hashes[c], predicate.clauses()[c],
                                 flat_cached.ClauseEntities(c), values);
        ++seed.evals;
        if (round == 0) {
          bits.push_back(result ? 1 : 0);
        } else {
          // Differential: later rounds must reproduce round 0 exactly.
          if (bits[cursor++] != (result ? 1 : 0)) return 1;
        }
      }
    }
    seed.us += NowUs() - t0;
  }

  // Leg B: flat pipeline over the same store.
  for (int round = 0; round < kRounds; ++round) {
    flat_cache.Clear();
    int64_t t0 = NowUs();
    FlatGather(store, &buffer, &seen, kValueBound);
    std::vector<uint8_t>& bits = flat.bits;
    if (round == 0) bits.clear();
    size_t cursor = 0;
    for (int c = 0; c < flat_cached.num_clauses(); ++c) {
      EntityId striped = flat_cached.ClauseEntities(c).back();
      CandidateView view = buffer.view(striped);
      stripe_out.resize(static_cast<size_t>(view.size()));
      flat_cached.EvalClauseStripe(predicate, c, base, striped, view.data,
                                   view.size(), stripe_out.data());
      flat.evals += view.size();
      for (int32_t i = 0; i < view.size(); ++i) {
        uint8_t bit = stripe_out[static_cast<size_t>(i)] ? 1 : 0;
        if (round == 0) {
          bits.push_back(bit);
        } else if (bits[cursor++] != bit) {
          return 1;
        }
      }
    }
    flat.us += NowUs() - t0;
  }

  bool agree = seed.bits == flat.bits && seed.evals == flat.evals;
  double seed_ns = seed.evals > 0
                       ? 1000.0 * static_cast<double>(seed.us) /
                             static_cast<double>(seed.evals)
                       : 0.0;
  double flat_ns = flat.evals > 0
                       ? 1000.0 * static_cast<double>(flat.us) /
                             static_cast<double>(flat.evals)
                       : 0.0;
  double speedup =
      flat.us > 0
          ? static_cast<double>(seed.us) / static_cast<double>(flat.us)
          : 0.0;
  bool ok = agree && speedup >= 3.0;

  std::printf("Cache-native evaluation hot path (miss-path, dense-entity "
              "workload).\nseed_path = chain copies + quadratic dedup + "
              "per-candidate probes;\nflat_path = in-place walk + columnar "
              "arena + striped batch eval.\n\n");
  std::printf("%9s %9s %7s | %11s %11s | %10s %10s | %9s | %7s\n",
              "entities", "versions", "rounds", "seed-us", "flat-us",
              "seed-ns/ev", "flat-ns/ev", "agreement", "speedup");
  std::printf("%9d %9d %7d | %11lld %11lld | %10.1f %10.1f | %9s | %6.1fx%s\n",
              kEntities, kVersionsPerEntity, kRounds,
              static_cast<long long>(seed.us),
              static_cast<long long>(flat.us), seed_ns, flat_ns,
              agree ? "exact" : "MISMATCH", speedup, ok ? "" : "  FAIL");
  std::printf("\nRESULT: %s — identical truth bits on every round%s.\n",
              ok ? "reproduced" : "FAILED",
              ok ? "; the flat path clears the 3x bar" : "");

  if (report != nullptr) {
    Json row = Json::Object();
    row["name"] = "eval_hotpath_miss";
    row["entities"] = kEntities;
    row["versions_per_entity"] = kVersionsPerEntity;
    row["rounds"] = kRounds;
    row["seed_us"] = seed.us;
    row["flat_us"] = flat.us;
    row["evaluations"] = seed.evals;
    row["seed_ns_per_conjunct"] = seed_ns;
    row["flat_ns_per_conjunct"] = flat_ns;
    row["speedup"] = speedup;
    row["agreement"] = agree;
    report->AddResult(std::move(row));
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(
      argc, argv, "eval_hotpath",
      [](const nonserial::BenchOptions&, nonserial::BenchReport* report) {
        return nonserial::Run(report) == 0;
      });
}
