// Experiment E13 — closing the loop between Sections 4 and 5: classify the
// histories each protocol actually *emits* against the correctness classes
// and the recovery hierarchy. Strict 2PL must land inside CSR (and strict);
// the Correct Execution Protocol routinely leaves CSR — the measurable face
// of "correctness without serializability".
//
// 8 transactions per run (small enough for the exact SR/MVSR recognizers),
// 40 random workloads per protocol.

#include <cstdio>

#include "classes/recognizers.h"
#include "classes/recoverability.h"
#include "core/database.h"
#include "workload/generators.h"

#include "bench_util.h"

namespace nonserial {
namespace {

struct Tally {
  int runs = 0;
  int csr = 0, vsr = 0, mvcsr = 0, mvsr = 0, cpc = 0;
  int rc = 0, aca = 0, strict = 0;
  int verified = 0;  // CEP only.
};

int Run() {
  std::printf("Classification of emitted histories (40 workloads x 8 long "
              "transactions each):\n\n");
  std::printf("%-8s | %5s %5s %6s %5s %5s | %5s %5s %5s | %s\n", "proto",
              "CSR", "SR", "MVCSR", "MVSR", "CPC", "RC", "ACA", "ST",
              "Thm2-ok");

  bool ok = true;
  for (ProtocolKind kind :
       {ProtocolKind::kCep, ProtocolKind::kStrict2pl,
        ProtocolKind::kPredicatewise2pl, ProtocolKind::kMvto}) {
    Tally tally;
    for (int seed = 1; seed <= 40; ++seed) {
      DesignWorkloadParams params;
      params.num_txs = 8;
      params.num_entities = 8;
      params.num_conjuncts = 2;
      params.reads_per_tx = 3;
      params.think_time = 120;
      params.cross_group_fraction = 0.3;
      params.precedence_prob = 0.25;
      params.arrival_spacing = 10;
      params.seed = static_cast<uint64_t>(seed) * 7919;
      SimWorkload workload = MakeDesignWorkload(params);
      RunReport report =
          RunWorkload(workload, kind, WorkloadConstraint(workload));
      if (!report.result.all_committed) continue;
      ++tally.runs;
      const EmittedHistory& history = report.result.history;
      ClassMembership m =
          ClassifyAll(history.schedule, workload.objects);
      tally.csr += m.csr;
      tally.vsr += m.vsr;
      tally.mvcsr += m.mvcsr;
      tally.mvsr += m.mvsr;
      tally.cpc += m.cpc;
      RecoveryClassification r =
          ClassifyRecovery(history.schedule, history.commits);
      tally.rc += r.recoverable;
      tally.aca += r.cascadeless;
      tally.strict += r.strict;
      if (kind == ProtocolKind::kCep) {
        tally.verified += report.verification.ok();
      }
    }
    std::printf("%-8s | %2d/%-2d %2d/%-2d %3d/%-2d %2d/%-2d %2d/%-2d | "
                "%2d/%-2d %2d/%-2d %2d/%-2d | %s\n",
                ProtocolKindName(kind), tally.csr, tally.runs, tally.vsr,
                tally.runs, tally.mvcsr, tally.runs, tally.mvsr, tally.runs,
                tally.cpc, tally.runs, tally.rc, tally.runs, tally.aca,
                tally.runs, tally.strict, tally.runs,
                kind == ProtocolKind::kCep
                    ? (tally.verified == tally.runs ? "all" : "SOME FAIL")
                    : "-");
    // Expected shapes.
    if (kind == ProtocolKind::kStrict2pl ||
        kind == ProtocolKind::kMvto) {
      // Serializable protocols stay serializable.
      if (tally.vsr != tally.runs) {
        std::printf("    !! a serializable protocol emitted a "
                    "non-serializable history\n");
        ok = false;
      }
    }
    if (kind == ProtocolKind::kCep) {
      if (tally.csr == tally.runs) {
        std::printf("    !! CEP never left CSR — the extra freedom did not "
                    "materialize\n");
        ok = false;
      }
      if (tally.verified != tally.runs) ok = false;
      // Recoverability by construction of the strengthened commit rule.
      if (tally.rc != tally.runs) {
        std::printf("    !! CEP emitted a non-recoverable history\n");
        ok = false;
      }
    }
  }

  std::printf(
      "\nReading: the locking/timestamp baselines pay for serializability;\n"
      "CEP histories regularly fall outside CSR (and even MVSR) yet every\n"
      "one re-verifies as a correct execution — and the strengthened commit\n"
      "rule keeps them recoverable for free.\n");
  std::printf("\nRESULT: %s\n", ok ? "reproduced" : "NOT REPRODUCED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "emitted_classes",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
