#include "bench_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace nonserial {

void BenchReport::AddThroughput(const std::string& name, int threads,
                                double ops_per_sec) {
  Json row = Json::Object();
  row["name"] = name;
  row["threads"] = threads;
  row["ops_per_sec"] = ops_per_sec;
  builder_.AddResult(std::move(row));
}

bool WriteTraceFile(const std::string& path, const SpanTimeline& timeline) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string doc = ChromeTraceJson(timeline).Dump(1);
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0 && written == doc.size();
}

int BenchMain(int argc, char** argv, const char* name,
              const std::function<bool(const BenchOptions&, BenchReport*)>&
                  body) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    }
  }

  // In json mode the benches' human report (printf to stdout) is muted by
  // pointing fd 1 at /dev/null for the duration of the body; the saved fd
  // is restored to print the report document. This keeps the 12 bench
  // bodies free of "if (json)" guards around every line they print.
  int saved_stdout = -1;
  if (options.json) {
    std::fflush(stdout);
    saved_stdout = dup(STDOUT_FILENO);
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, STDOUT_FILENO);
      close(devnull);
    }
  }

  BenchReport report(name);
  bool ok = body(options, &report);

  if (options.json) {
    std::fflush(stdout);
    if (saved_stdout >= 0) {
      dup2(saved_stdout, STDOUT_FILENO);
      close(saved_stdout);
    }
    report.builder().SetOk(ok);
    std::string doc = report.builder().Dump(2);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return ok ? 0 : 1;
}

}  // namespace nonserial
