#ifndef NONSERIAL_BENCH_BENCH_UTIL_H_
#define NONSERIAL_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/report.h"
#include "common/span.h"
#include "protocol/trace.h"

namespace nonserial {

/// Flags every bench binary understands (parsed by BenchMain).
struct BenchOptions {
  /// --json: print one run-report document (common/report.h schema) on
  /// stdout and nothing else.
  bool json = false;
  /// --trace FILE: benches that record a span timeline write it to FILE in
  /// Chrome trace_event format. Ignored by benches without a timeline.
  std::string trace_path;
};

/// The report a bench fills while it runs. A thin veneer over
/// ReportBuilder that adds the conventional row shapes and the
/// protocol-layer attachments the common library cannot see.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : builder_(std::move(name)) {}

  Json& config() { return builder_.config(); }

  /// The conventional throughput row: {"name", "threads", "ops_per_sec"}.
  void AddThroughput(const std::string& name, int threads,
                     double ops_per_sec);

  /// A free-form result row.
  void AddResult(Json row) { builder_.AddResult(std::move(row)); }

  void AttachMetrics(const ProtocolMetrics& metrics) {
    builder_.AttachMetrics(metrics);
  }

  /// Per-protocol event tallies from a recorder that observed the run.
  void AttachEvents(const TraceRecorder& recorder) {
    builder_.AttachEventTallies(recorder.Tally());
  }

  ReportBuilder& builder() { return builder_; }

 private:
  ReportBuilder builder_;
};

/// Writes the timeline to `path` as a Chrome trace_event JSON file (open
/// in about:tracing or ui.perfetto.dev). Returns false on I/O failure.
bool WriteTraceFile(const std::string& path, const SpanTimeline& timeline);

/// Shared entry point for every bench binary: parses the common flags,
/// runs `body`, and exits non-zero if it returned false.
///
/// In --json mode the bench's human-readable printf output is silenced
/// (stdout is redirected to /dev/null around the body) and the single
/// report document is printed instead — so stdout is exactly one JSON
/// document, gated in CI by `python3 -m json.tool`. `body` reports
/// success as its return value and fills `report` as it goes.
int BenchMain(int argc, char** argv, const char* name,
              const std::function<bool(const BenchOptions&, BenchReport*)>&
                  body);

}  // namespace nonserial

#endif  // NONSERIAL_BENCH_BENCH_UTIL_H_
