// Experiment E10 — nested transactions (Section 2.2, Figure 1): the tree
// structure lets subtransactions run in parallel while the partial order
// keeps the design process coherent.
//
// Part A checks the Figure 1 tree itself at the model layer: every
// P-consistent serial order of the nested execution is a correct execution.
//
// Part B runs task trees through the simulator: each tree node is a design
// task (a transaction writing its own entity after consulting its parent's),
// with P edges parent -> child. We sweep fan-out and depth and compare the
// protocols' makespan: the critical path is depth x duration; width is free
// concurrency a good protocol should exploit.

#include <cstdio>
#include <string>
#include <vector>

#include "core/database.h"
#include "model/execution.h"
#include "workload/generators.h"
#include "workload/nested_gen.h"

#include "bench_util.h"

namespace nonserial {
namespace {

// --- Part A: the Figure 1 tree at the model layer -----------------------

TransactionTree BuildFigure1Tree() {
  TransactionTree tree;
  auto bump = [&](const std::string& name, EntityId e) {
    LeafProgram p;
    p.AddWrite(e, Expr::Add(Expr::Var(e), Expr::Const(1)));
    return tree.AddLeaf(name, p);
  };
  int t00 = bump("t.0.0", 0), t01 = bump("t.0.1", 0), t02 = bump("t.0.2", 1);
  int t0 = tree.AddInternal("t.0", {t00, t01, t02}, {{0, 1}, {1, 2}},
                            Specification(), 2);
  int t100 = bump("t.1.0.0", 1), t101 = bump("t.1.0.1", 2);
  int t10 =
      tree.AddInternal("t.1.0", {t100, t101}, {{0, 1}}, Specification(), 1);
  int t110 = bump("t.1.1.0", 0), t111 = bump("t.1.1.1", 1),
      t112 = bump("t.1.1.2", 2);
  int t11 = tree.AddInternal("t.1.1", {t110, t111, t112}, {},
                             Specification(), 2);
  int t1 = tree.AddInternal("t.1", {t10, t11}, {}, Specification(), 1);
  int t20 = bump("t.2.0", 2);
  int t2 = tree.AddInternal("t.2", {t20}, {}, Specification(), 0);
  int root = tree.AddInternal("t", {t0, t1, t2}, {{0, 1}, {1, 2}},
                              Specification(), 2);
  tree.SetRoot(root);
  return tree;
}

bool PartA() {
  TransactionTree tree = BuildFigure1Tree();
  // Exercise several P-consistent orders of t.1.1's unordered children and
  // of t.1's children: all must give correct executions with identical
  // final counters (the commutative bumps).
  // Node ids are assigned in creation order: t.1.1 is node 10. Its
  // children are unordered by P, but the designated final child (t.1.1.2,
  // position 2) must still run last — it is the t_f whose input state is
  // the node's result.
  std::vector<std::map<int, std::vector<int>>> orders = {
      {},
      {{10, {1, 0, 2}}},  // t.1.1.0 and t.1.1.1 swapped.
  };
  int correct = 0;
  for (const auto& order : orders) {
    auto exec = MakeSerialExecution(tree, {0, 0, 0}, &order);
    if (!exec.ok()) continue;
    if (!CheckCorrectExecution(tree, *exec).ok()) continue;
    ExecutionEvaluator eval(tree, *exec);
    auto out = eval.OutputOf(tree.root());
    if (out.ok() && *out == UniqueState{3, 3, 3}) ++correct;
  }
  std::printf("Part A: Figure 1 tree — %d/%zu P-consistent executions are "
              "correct with final state {3,3,3}.\n\n",
              correct, orders.size());
  return correct == static_cast<int>(orders.size());
}

// --- Part B: task trees through the simulator ----------------------------

SimWorkload TaskTreeWorkload(int fanout, int depth, SimTime think) {
  SimWorkload w;
  // One entity per node, breadth-first ids.
  std::vector<int> parent;
  int total = 0;
  for (int level = 0, width = 1; level < depth; ++level, width *= fanout) {
    total += width;
  }
  w.initial.assign(total, 50);
  w.objects = {{}};
  for (EntityId e = 0; e < total; ++e) w.objects[0].insert(e);

  int next = 1;
  std::vector<std::pair<int, int>> frontier = {{0, 0}};  // (node, level).
  parent.assign(total, -1);
  for (size_t i = 0; i < frontier.size(); ++i) {
    auto [node, level] = frontier[i];
    if (level + 1 < depth) {
      for (int c = 0; c < fanout && next < total; ++c) {
        parent[next] = node;
        frontier.push_back({next, level + 1});
        ++next;
      }
    }
  }

  for (int node = 0; node < total; ++node) {
    SimTx tx;
    tx.name = "task" + std::to_string(node);
    tx.think_between_ops = think;
    tx.arrival = 0;
    Predicate input;
    EntityId own = node;
    auto bound = [](EntityId e, CompareOp op, Value v) {
      return Clause({EntityVsConst(e, op, v)});
    };
    if (parent[node] >= 0) {
      EntityId pe = parent[node];
      input.AddClause(bound(pe, CompareOp::kGe, 0));
      input.AddClause(bound(pe, CompareOp::kLe, 100));
      tx.steps.push_back(SimStep::Read(pe));
      tx.predecessors.push_back(parent[node]);
      // Refine the parent's value into the node's own entity.
      tx.steps.push_back(SimStep::Write(
          own, Expr::Min(Expr::Add(Expr::Var(pe), Expr::Const(1)),
                         Expr::Const(100))));
    } else {
      input.AddClause(bound(own, CompareOp::kGe, 0));
      input.AddClause(bound(own, CompareOp::kLe, 100));
      tx.steps.push_back(SimStep::Read(own));
      tx.steps.push_back(SimStep::Write(
          own, Expr::Min(Expr::Add(Expr::Var(own), Expr::Const(1)),
                         Expr::Const(100))));
    }
    tx.input = input;
    Predicate output;
    output.AddClause(bound(own, CompareOp::kGe, 0));
    output.AddClause(bound(own, CompareOp::kLe, 100));
    tx.output = output;
    w.txs.push_back(std::move(tx));
  }
  return w;
}

bool PartB() {
  std::printf("Part B: task trees (think=200 per op). Ideal makespan ~ "
              "depth x task time.\n\n");
  std::printf("%7s %6s %6s %-8s | %9s %10s %8s | %s\n", "fanout", "depth",
              "tasks", "proto", "makespan", "blocked", "aborts", "verified");
  bool ok = true;
  for (int fanout : {1, 2, 4}) {
    for (int depth : {3}) {
      SimWorkload w = TaskTreeWorkload(fanout, depth, 200);
      Predicate constraint = WorkloadConstraint(w);
      SimTime serial_estimate = 0;
      for (ProtocolKind kind :
           {ProtocolKind::kCep, ProtocolKind::kStrict2pl,
            ProtocolKind::kMvto}) {
        RunReport report = RunWorkload(w, kind, constraint);
        const SimResult& r = report.result;
        const char* verified = "-";
        if (kind == ProtocolKind::kCep) {
          verified = report.verification.ok() ? "ok" : "FAILED";
          ok &= report.verification.ok();
        }
        std::printf("%7d %6d %6zu %-8s | %9lld %10lld %8lld | %s\n", fanout,
                    depth, w.txs.size(), report.protocol.c_str(),
                    static_cast<long long>(r.makespan),
                    static_cast<long long>(r.total_blocked),
                    static_cast<long long>(r.total_aborts), verified);
        ok &= r.all_committed;
        if (kind == ProtocolKind::kStrict2pl) serial_estimate = r.makespan;
      }
      // Width must be (nearly) free: quadrupling the tree size at fixed
      // depth should not quadruple the 2PL makespan.
      if (fanout == 4 && serial_estimate >
                              4 * 3 * 200 * depth) {
        ok = false;
      }
      std::printf("\n");
    }
  }
  return ok;
}

// --- Part C: the hierarchical protocol on project trees ------------------

bool PartC() {
  std::printf("\nPart C: two-level Nested-CEP — projects as top-level "
              "transactions, designers as\nsubtransactions (think=100). "
              "Scope commits are relative; projects chain with p=0.5.\n\n");
  std::printf("%9s %8s %-11s | %9s %10s %8s %7s %7s\n", "projects",
              "members", "proto", "makespan", "blocked", "aborts",
              "gcommit", "gresets");
  bool ok = true;
  for (int projects : {2, 4, 8}) {
    NestedWorkloadParams params;
    params.num_projects = projects;
    params.members_per_project = 4;
    params.entities_per_project = 5;
    params.think_time = 100;
    params.project_chain_prob = 0.5;
    params.member_chain_prob = 0.4;
    params.seed = 77;
    NestedWorkload nw = MakeNestedDesignWorkload(params);

    // Hierarchical protocol.
    Simulator sim;
    std::shared_ptr<VersionStore> store;
    std::shared_ptr<ConcurrencyController> controller;
    SimResult nested_result = sim.Run(
        nw.workload, MakeNestedCepFactory(nw.nested), &store, &controller);
    const auto* nested =
        dynamic_cast<const NestedCepController*>(controller.get());
    std::printf("%9d %8d %-11s | %9lld %10lld %8lld %7lld %7lld\n", projects,
                params.members_per_project, "Nested-CEP",
                static_cast<long long>(nested_result.makespan),
                static_cast<long long>(nested_result.total_blocked),
                static_cast<long long>(nested_result.total_aborts),
                static_cast<long long>(nested->stats().group_commits),
                static_cast<long long>(nested->stats().group_resets));
    ok &= nested_result.all_committed;
    ok &= nested->stats().group_commits == projects;

    // Flat CEP on the same member transactions (the scopes dissolved; the
    // member partial order kept; project chaining dropped, since flat CEP
    // has no group transactions to order).
    SimResult flat_result =
        sim.Run(nw.workload, MakeControllerFactory(ProtocolKind::kCep));
    std::printf("%9d %8d %-11s | %9lld %10lld %8lld %7s %7s\n", projects,
                params.members_per_project, "flat CEP",
                static_cast<long long>(flat_result.makespan),
                static_cast<long long>(flat_result.total_blocked),
                static_cast<long long>(flat_result.total_aborts), "-", "-");
    ok &= flat_result.all_committed;
    std::printf("\n");
  }
  std::printf("(Nested-CEP pays group chaining and relative commits for "
              "scope isolation —\nsubtransaction effects stay invisible "
              "outside their project until the project commits.)\n");
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(
      argc, argv, "nested_concurrency",
      [](const nonserial::BenchOptions&, nonserial::BenchReport*) {
        bool a = nonserial::PartA();
        bool b = nonserial::PartB();
        bool c = nonserial::PartC();
        std::printf("\nRESULT: %s — sibling subtransactions run in parallel; "
                    "the critical path follows tree depth, not size;\nthe "
                    "hierarchical protocol commits every project with scope "
                    "isolation intact.\n",
                    (a && b && c) ? "reproduced" : "NOT REPRODUCED");
        return a && b && c;
      });
}
