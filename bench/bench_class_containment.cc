// Experiment E2 — "the classes are richer" (Section 4): quantifies how many
// schedules each correctness class admits.
//
// Part A enumerates *every* interleaving of small fixed transaction
// programs and counts per-class membership; Part B samples random schedules
// at a larger size. The paper's qualitative claim — each model feature
// (versions, predicates, both) strictly enlarges the admitted class — shows
// up as strictly increasing admission counts
//   CSR <= SR <= MVSR,   CSR <= MVCSR <= CPC <= PC
// with strict gaps at every step for these workloads.

#include <cstdio>
#include <vector>

#include "classes/recognizers.h"
#include "common/random.h"
#include "workload/schedule_gen.h"

#include "bench_util.h"

namespace nonserial {
namespace {

struct Counts {
  int64_t total = 0;
  int64_t csr = 0, vsr = 0, mvcsr = 0, mvsr = 0;
  int64_t pwcsr = 0, pwsr = 0, cpc = 0, pc = 0;

  void Add(const ClassMembership& m) {
    ++total;
    csr += m.csr;
    vsr += m.vsr;
    mvcsr += m.mvcsr;
    mvsr += m.mvsr;
    pwcsr += m.pwcsr;
    pwsr += m.pwsr;
    cpc += m.cpc;
    pc += m.pc;
  }

  void PrintRow(const char* label) const {
    std::printf("%-26s %8lld | %7lld %7lld %7lld %7lld | %7lld %7lld %7lld "
                "%7lld\n",
                label, static_cast<long long>(total),
                static_cast<long long>(csr), static_cast<long long>(vsr),
                static_cast<long long>(mvcsr), static_cast<long long>(mvsr),
                static_cast<long long>(pwcsr), static_cast<long long>(pwsr),
                static_cast<long long>(cpc), static_cast<long long>(pc));
  }
};

void Header() {
  std::printf("%-26s %8s | %7s %7s %7s %7s | %7s %7s %7s %7s\n", "workload",
              "total", "CSR", "SR", "MVCSR", "MVSR", "PWCSR", "PWSR", "CPC",
              "PC");
}

bool CheckMonotone(const Counts& c) {
  bool ok = c.csr <= c.vsr && c.vsr <= c.mvsr && c.csr <= c.mvcsr &&
            c.mvcsr <= c.mvsr && c.mvcsr <= c.cpc && c.pwcsr <= c.cpc &&
            c.cpc <= c.pc && c.vsr <= c.pwsr && c.pwsr <= c.pc;
  if (!ok) std::printf("  !! containment violated\n");
  return ok;
}

// Part A: exhaustive enumeration over all interleavings of fixed programs.
Counts Exhaustive(const std::vector<std::vector<Op>>& programs,
                  int num_entities, const ObjectSetList& objects) {
  Counts counts;
  ForEachInterleaving(programs, num_entities, [&](const Schedule& s) {
    counts.Add(ClassifyAll(s, objects));
    return true;
  });
  return counts;
}

std::vector<Op> Program(TxId tx, std::initializer_list<std::pair<OpKind, int>>
                                     steps) {
  std::vector<Op> out;
  for (auto [kind, entity] : steps) {
    out.push_back(Op{tx, kind, static_cast<EntityId>(entity)});
  }
  return out;
}

int Run() {
  constexpr OpKind R = OpKind::kRead;
  constexpr OpKind W = OpKind::kWrite;
  bool all_ok = true;

  std::printf("Part A: exhaustive enumeration of interleavings\n\n");
  Header();

  {
    // The Example 1/2 programs: t1 = R(x)W(x)R(y)W(y), t2 = R(x)R(y)W(y).
    std::vector<std::vector<Op>> programs = {
        Program(0, {{R, 0}, {W, 0}, {R, 1}, {W, 1}}),
        Program(1, {{R, 0}, {R, 1}, {W, 1}})};
    Counts c = Exhaustive(programs, 2, {{0}, {1}});
    c.PrintRow("example-1 programs");
    all_ok &= CheckMonotone(c);
    all_ok &= c.csr < c.vsr || c.vsr < c.mvsr;  // Richness is visible.
  }
  {
    // Two symmetric read-modify-write transactions on x and y.
    std::vector<std::vector<Op>> programs = {
        Program(0, {{R, 0}, {W, 0}, {R, 1}, {W, 1}}),
        Program(1, {{R, 1}, {W, 1}, {R, 0}, {W, 0}})};
    Counts c = Exhaustive(programs, 2, {{0}, {1}});
    c.PrintRow("opposed RMW pairs");
    all_ok &= CheckMonotone(c);
  }
  {
    // Three writers with one reader (dead-write effects, region 5 family).
    std::vector<std::vector<Op>> programs = {
        Program(0, {{R, 0}, {W, 0}}), Program(1, {{W, 0}}),
        Program(2, {{W, 0}})};
    Counts c = Exhaustive(programs, 1, {{0}});
    c.PrintRow("blind writers (1 item)");
    all_ok &= CheckMonotone(c);
    all_ok &= c.vsr > c.csr;   // Dead writes: SR strictly exceeds CSR.
    all_ok &= c.mvcsr > c.csr; // Versions: MVCSR strictly exceeds CSR.
  }

  std::printf("\nPart B: random sampling, 3 txs x 4 ops over 4 entities, "
              "2 conjuncts\n\n");
  Header();
  Rng rng(20260705);
  ScheduleGenParams params;
  params.num_txs = 3;
  params.num_entities = 4;
  params.ops_per_tx = 4;
  params.write_fraction = 0.5;
  ObjectSetList objects = PartitionObjects(params.num_entities, 2);
  Counts sample;
  for (int i = 0; i < 4000; ++i) {
    Schedule s = RandomSchedule(params, &rng);
    sample.Add(ClassifyAll(s, objects));
  }
  sample.PrintRow("random sample (n=4000)");
  all_ok &= CheckMonotone(sample);

  std::printf("\nAdmission ratios relative to CSR (random sample):\n");
  auto ratio = [&](int64_t v) {
    return sample.csr == 0 ? 0.0
                           : static_cast<double>(v) /
                                 static_cast<double>(sample.csr);
  };
  std::printf("  SR/CSR = %.3f  MVCSR/CSR = %.3f  MVSR/CSR = %.3f\n",
              ratio(sample.vsr), ratio(sample.mvcsr), ratio(sample.mvsr));
  std::printf("  PWCSR/CSR = %.3f  PWSR/CSR = %.3f  CPC/CSR = %.3f  "
              "PC/CSR = %.3f\n",
              ratio(sample.pwcsr), ratio(sample.pwsr), ratio(sample.cpc),
              ratio(sample.pc));

  std::printf("\nRESULT: containment lattice %s on every workload.\n",
              all_ok ? "holds" : "VIOLATED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "class_containment",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::Run() == 0;
                              });
}
