// Experiment E1 — Figure 2 of the paper: the containment structure of the
// correctness classes, demonstrated by one concrete schedule per non-empty
// region (plus the worked Examples 1/2/3).
//
// For each schedule we print the measured membership in every class next to
// the membership vector derived from the paper's discussion; the bench exits
// non-zero if any measurement disagrees.
//
// Notes on reconstruction: the scanned paper's interleavings are ambiguous
// in places (the schedules are typeset as offset rows). Each schedule below
// realizes the phenomenon the region text describes; regions 6 and 8 are
// re-derived so that the stated containments (SR − MVCSR, multiversion
// serial with a free final read, resp.) hold exactly.

#include <cstdio>
#include <string>
#include <vector>

#include "classes/recognizers.h"
#include "schedule/schedule.h"

#include "bench_util.h"

namespace nonserial {
namespace {

struct RegionCase {
  const char* id;
  const char* description;
  const char* schedule;
  bool split_objects;  // true: {x},{y}; false: one object for all entities.
  ClassMembership expected;
};

ClassMembership Vec(bool csr, bool vsr, bool mvcsr, bool mvsr, bool pwcsr,
                    bool pwsr, bool cpc, bool pc) {
  ClassMembership m;
  m.csr = csr;
  m.vsr = vsr;
  m.mvcsr = mvcsr;
  m.mvsr = mvsr;
  m.pwcsr = pwcsr;
  m.pwsr = pwsr;
  m.cpc = cpc;
  m.pc = pc;
  return m;
}

int RunAll() {
  const std::vector<RegionCase> cases = {
      {"region-1", "non-CPC: fully interleaved R/W pair",
       "R1(x) R2(x) W1(x) W2(x)", true,
       Vec(false, false, false, false, false, false, false, false)},
      {"region-2", "CPC - (PWCSR u MVCSR u SR)",
       "R1(y) R2(x) W1(x) W2(x) W2(y) W1(y)", true,
       Vec(false, false, false, false, false, false, true, true)},
      {"region-3", "PWCSR - (MVCSR u SR): opposite per-conjunct orders",
       "R1(x) W1(x) R2(y) W2(y) R2(x) W2(x) R1(y) W1(y)", true,
       Vec(false, false, false, false, true, true, true, true)},
      {"region-4", "(PWCSR n MVCSR) - SR  [= Example 1 / Example 2]",
       "R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)", true,
       Vec(false, false, true, true, true, true, true, true)},
      {"region-5", "SR - PWCSR: dead write saves view equivalence",
       "R1(x) W2(x) W1(x) W3(x)", false,
       Vec(false, true, true, true, false, true, true, true)},
      {"region-6", "SR - MVCSR: rw cycle tolerated by a dead write",
       "R3(y) W2(x) R1(x) W3(x) W1(y) W1(x)", false,
       Vec(false, true, false, true, false, true, false, true)},
      {"region-7", "MVCSR - PWCSR: write slipped under a reader",
       "R1(x) W2(x) W1(x)", false,
       Vec(false, false, true, true, false, false, true, true)},
      {"region-8", "(MVSR n MVCSR) - CSR: free choice of final y version",
       "R1(x) R2(x) W1(x) W1(y) W2(y) W3(x)", true,
       Vec(false, false, true, true, true, true, true, true)},
      {"region-9", "CSR: every conflict resolved in the same order",
       "R1(x) W1(x) R2(x) R1(y) W1(y) R2(y) W2(y)", true,
       Vec(true, true, true, true, true, true, true, true)},
      {"example-3a", "x-projection of Example 2 (serial)",
       "R1(x) W1(x) R2(x)", false,
       Vec(true, true, true, true, true, true, true, true)},
      {"example-3b", "y-projection of Example 2 (serial)",
       "R2(y) W2(y) R1(y) W1(y)", false,
       Vec(true, true, true, true, true, true, true, true)},
  };

  std::printf("Figure 2 reproduction: membership of each region's example\n");
  std::printf("schedule in every correctness class.\n\n");

  int mismatches = 0;
  for (const RegionCase& c : cases) {
    auto parsed = ParseSchedule(c.schedule);
    if (!parsed.ok()) {
      std::printf("%s: parse error: %s\n", c.id,
                  parsed.status().ToString().c_str());
      ++mismatches;
      continue;
    }
    const Schedule& s = *parsed;
    ObjectSetList objects;
    if (c.split_objects) {
      for (EntityId e = 0; e < s.num_entities(); ++e) objects.push_back({e});
    } else {
      std::set<EntityId> all;
      for (EntityId e = 0; e < s.num_entities(); ++e) all.insert(e);
      objects.push_back(all);
    }
    ClassMembership m = ClassifyAll(s, objects);
    bool match = m == c.expected;
    if (!match) ++mismatches;
    std::printf("%-11s %s   objects=%s\n", c.id, c.schedule,
                c.split_objects ? "per-entity" : "single");
    auto cell = [](bool measured, bool expected) {
      return measured == expected ? (measured ? "yes " : "no  ")
                                  : (measured ? "YES!" : "NO!!");
    };
    std::printf("  CSR=%s SR=%s MVCSR=%s MVSR=%s PWCSR=%s PWSR=%s CPC=%s "
                "PC=%s  -> %s\n",
                cell(m.csr, c.expected.csr), cell(m.vsr, c.expected.vsr),
                cell(m.mvcsr, c.expected.mvcsr),
                cell(m.mvsr, c.expected.mvsr),
                cell(m.pwcsr, c.expected.pwcsr),
                cell(m.pwsr, c.expected.pwsr), cell(m.cpc, c.expected.cpc),
                cell(m.pc, c.expected.pc), match ? "match" : "MISMATCH");
    std::printf("  (%s)\n\n", c.description);
  }

  std::printf("Strict containment witnesses (paper, Section 4):\n");
  std::printf("  MVSR  - SR    : region-4 (Example 1)\n");
  std::printf("  PWSR  - SR    : region-3\n");
  std::printf("  CPC   - MVCSR : region-2\n");
  std::printf("  CPC   - PWCSR : region-2, region-7\n");
  std::printf("  SR    - CSR   : region-5, region-6\n");
  std::printf("  MVCSR - CSR   : region-5, region-7, region-8\n\n");

  if (mismatches == 0) {
    std::printf("RESULT: all %zu region schedules classified as the paper "
                "describes.\n",
                cases.size());
  } else {
    std::printf("RESULT: %d MISMATCHES — see rows marked '!'.\n", mismatches);
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "fig2_regions",
                              [](const nonserial::BenchOptions&,
                                 nonserial::BenchReport*) {
                                return nonserial::RunAll() == 0;
                              });
}
