// Engine-as-a-service benchmark: closed-loop clients drive the same
// transaction loop against the same engine twice — in-process through
// Session handles, and over TCP through the wire protocol — and the run
// fails unless the wire path keeps >= 0.5x of the in-process throughput at
// 8 sessions on the think-paced workload.
//
// The gated legs are think-paced (each client sleeps kThinkUs between
// transactions, the paper's human-paced CAD clients): client latency
// dominates, so the gate measures whether the server keeps 8 sessions'
// thinks overlapped, not how loopback syscalls compare to a function call.
// The zero-think legs and the ping leg are reported ungated — they are the
// honest raw-overhead numbers (a framed TCP round trip per request cannot
// match an in-process call and is not asked to).
//
// A final leg runs admission control hot (max_inflight_tx below the client
// count): clients see RETRY_LATER and retry, and the report carries the
// shed counters and queue-depth histogram CI asserts on.
//
// --json: print the run-report document; scripts/ci.sh saves it as
// BENCH_server.json and re-checks the gate from the artifact.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"

namespace nonserial {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kSessions = 8;
constexpr int kEntitiesPerSession = 2;
constexpr int64_t kThinkUs = 1'000;

ValueVector InitialState() {
  return ValueVector(kSessions * kEntitiesPerSession, 50);
}

/// Input condition for session `i`: its two entities hold sane values.
/// Small on purpose — predicate bytes ride every BEGIN frame, matching the
/// in-process spec exactly.
Predicate SessionInput(int i) {
  Predicate p;
  for (int k = 0; k < kEntitiesPerSession; ++k) {
    EntityId e = static_cast<EntityId>(i * kEntitiesPerSession + k);
    p.AddClause(Clause({EntityVsConst(e, CompareOp::kGe, 0)}));
  }
  return p;
}

engine::TxSpec SessionSpec(int i) {
  engine::TxSpec spec;
  spec.name = "client" + std::to_string(i);
  spec.input = SessionInput(i);
  return spec;
}

EngineOptions BaseEngineOptions(ProtocolMetrics* metrics) {
  EngineOptions options;
  options.initial = InitialState();
  options.protocol.metrics = metrics;
  options.poll_us = 100;
  options.max_poll_us = 2'000;
  options.max_blocked_us = 2'000'000;
  return options;
}

/// One closed-loop client: `tx_count` transactions of write-write-read-
/// commit over the session's two private entities, one think per loop.
/// Returns the number of committed transactions. RETRY_LATER answers
/// (admission shed) are retried after a short backoff; aborts restart the
/// transaction. `op` is called for each step so the same loop body drives
/// a Session and a wire Client.
template <typename BeginFn, typename WriteFn, typename ReadFn,
          typename CommitFn>
int ClosedLoop(int i, int tx_count, int64_t think_us, std::atomic<int>* sheds,
               const BeginFn& begin, const WriteFn& write, const ReadFn& read,
               const CommitFn& commit) {
  EntityId e0 = static_cast<EntityId>(i * kEntitiesPerSession);
  EntityId e1 = static_cast<EntityId>(i * kEntitiesPerSession + 1);
  int committed = 0;
  for (Value round = 1; committed < tx_count;) {
    Status s = begin();
    if (s.code() == StatusCode::kResourceExhausted) {
      sheds->fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    if (!s.ok()) continue;  // Aborted: restart the attempt.
    if (!write(e0, round).ok() || !write(e1, round + 1).ok()) continue;
    if (!read(e0).ok()) continue;
    if (!commit().ok()) continue;
    ++committed;
    ++round;
    if (think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(think_us));
    }
  }
  return committed;
}

struct LegOutcome {
  double commits_per_sec = 0;
  int committed = 0;
  int sheds_observed = 0;  ///< RETRY_LATER answers clients retried through.
};

/// In-process leg: N threads, each owning one Session.
LegOutcome RunInProcess(Engine* engine, int tx_count, int64_t think_us) {
  LegOutcome out;
  std::atomic<int> committed{0};
  std::atomic<int> sheds{0};
  std::vector<std::thread> clients;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i] {
      std::unique_ptr<Session> session = engine->OpenSession();
      engine::TxSpec spec = SessionSpec(i);
      committed.fetch_add(ClosedLoop(
          i, tx_count, think_us, &sheds,
          [&] { return session->Begin(spec); },
          [&](EntityId e, Value v) { return session->Write(e, v); },
          [&](EntityId e) { return session->Read(e).status(); },
          [&] { return session->Commit(); }));
    });
  }
  for (std::thread& t : clients) t.join();
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  out.committed = committed.load();
  out.commits_per_sec = secs > 0 ? out.committed / secs : 0;
  out.sheds_observed = sheds.load();
  return out;
}

/// Wire leg: N threads, each owning one TCP connection to the server.
LegOutcome RunOverWire(int port, int tx_count, int64_t think_us) {
  LegOutcome out;
  std::atomic<int> committed{0};
  std::atomic<int> sheds{0};
  std::vector<std::thread> clients;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i, port] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      // Ship the predicates once; the retry loop reuses the staged spec
      // (the wire analogue of the in-process leg's reusable TxSpec).
      if (!client.StagePredicates(SessionInput(i), Predicate::True()).ok()) {
        return;
      }
      std::string name = "client" + std::to_string(i);
      committed.fetch_add(ClosedLoop(
          i, tx_count, think_us, &sheds,
          [&] { return client.BeginStaged(name, {}).status(); },
          [&](EntityId e, Value v) { return client.Write(e, v); },
          [&](EntityId e) { return client.Read(e).status(); },
          [&] { return client.Commit(); }));
    });
  }
  for (std::thread& t : clients) t.join();
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  out.committed = committed.load();
  out.commits_per_sec = secs > 0 ? out.committed / secs : 0;
  out.sheds_observed = sheds.load();
  return out;
}

Json LegRow(const char* name, const LegOutcome& o,
            const ProtocolMetrics& metrics) {
  Json row = Json::Object();
  row["name"] = std::string(name);
  row["threads"] = kSessions;
  row["ops_per_sec"] = o.commits_per_sec;
  row["committed"] = o.committed;
  Json& server = row["server"];
  server["accepted"] = metrics.server_accepted.value();
  server["shed"] = metrics.server_shed.value();
  server["shed_rate"] =
      metrics.server_accepted.value() + metrics.server_shed.value() > 0
          ? static_cast<double>(metrics.server_shed.value()) /
                static_cast<double>(metrics.server_accepted.value() +
                                    metrics.server_shed.value())
          : 0.0;
  server["wire_errors"] = metrics.server_wire_errors.value();
  server["queue_depth_p99"] = metrics.server_queue_depth.ApproxPercentile(0.99);
  server["queue_depth_max"] = metrics.server_queue_depth.max();
  server["inflight_p99"] = metrics.server_inflight.ApproxPercentile(0.99);
  return row;
}

/// Ping round-trip leg: the floor of the wire path, one frame each way.
double PingMicros(int port) {
  Client client;
  if (!client.Connect("127.0.0.1", port).ok()) return -1;
  constexpr int kPings = 2'000;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < kPings; ++i) {
    if (!client.Ping(i).ok()) return -1;
  }
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return secs * 1e6 / kPings;
}

bool RunBench(const BenchOptions&, BenchReport* report) {
  report->config()["sessions"] = kSessions;
  report->config()["think_us"] = kThinkUs;
  bool ok = true;

  std::printf("%16s %6s | %10s %9s | %8s %6s %9s\n", "leg", "sess",
              "commits/s", "committed", "accepted", "shed", "queue p99");
  auto emit = [&](const char* name, const LegOutcome& o,
                  const ProtocolMetrics& m) {
    std::printf("%16s %6d | %10.1f %9d | %8lld %6lld %9lld\n", name, kSessions,
                o.commits_per_sec, o.committed,
                static_cast<long long>(m.server_accepted.value()),
                static_cast<long long>(m.server_shed.value()),
                static_cast<long long>(m.server_queue_depth.ApproxPercentile(0.99)));
    report->AddResult(LegRow(name, o, m));
  };

  // --- gated think-paced legs ---------------------------------------------
  constexpr int kThinkTx = 120;
  double inproc_think = 0, wire_think = 0;
  {
    ProtocolMetrics metrics;
    Engine engine(BaseEngineOptions(&metrics));
    LegOutcome o = RunInProcess(&engine, kThinkTx, kThinkUs);
    engine.Shutdown();
    ok &= o.committed == kSessions * kThinkTx;
    inproc_think = o.commits_per_sec;
    emit("inproc_think", o, metrics);
  }
  {
    ProtocolMetrics metrics;
    Engine engine(BaseEngineOptions(&metrics));
    ServerOptions server_options;
    server_options.num_workers = kSessions;
    SessionServer server(&engine, server_options);
    if (!server.Start().ok()) return false;
    LegOutcome o = RunOverWire(server.port(), kThinkTx, kThinkUs);
    engine.Shutdown();
    server.Stop();
    ok &= o.committed == kSessions * kThinkTx;
    wire_think = o.commits_per_sec;
    emit("wire_think", o, metrics);
    report->AttachMetrics(metrics);
  }

  // --- ungated zero-think legs (raw wire overhead) ------------------------
  // Small on purpose: every committed session transaction occupies a fresh
  // controller id, and candidate gathering scans all registered ids, so a
  // long zero-think run measures controller-id scaling instead of wire
  // overhead (and slows CI).
  constexpr int kZeroTx = 100;
  {
    ProtocolMetrics metrics;
    Engine engine(BaseEngineOptions(&metrics));
    LegOutcome o = RunInProcess(&engine, kZeroTx, 0);
    engine.Shutdown();
    ok &= o.committed == kSessions * kZeroTx;
    emit("inproc_zero", o, metrics);
  }
  double ping_us = -1;
  {
    ProtocolMetrics metrics;
    Engine engine(BaseEngineOptions(&metrics));
    ServerOptions server_options;
    server_options.num_workers = kSessions;
    SessionServer server(&engine, server_options);
    if (!server.Start().ok()) return false;
    LegOutcome o = RunOverWire(server.port(), kZeroTx, 0);
    ping_us = PingMicros(server.port());
    engine.Shutdown();
    server.Stop();
    ok &= o.committed == kSessions * kZeroTx;
    emit("wire_zero", o, metrics);
  }
  report->config()["ping_rtt_us"] = ping_us;
  std::printf("ping round trip: %.1f us\n", ping_us);
  ok &= ping_us > 0;

  // --- admission-control leg: shed under an undersized budget --------------
  {
    ProtocolMetrics metrics;
    EngineOptions options = BaseEngineOptions(&metrics);
    options.max_inflight_tx = kSessions / 4;  // 2 slots for 8 clients.
    Engine engine(options);
    ServerOptions server_options;
    server_options.num_workers = kSessions;
    SessionServer server(&engine, server_options);
    if (!server.Start().ok()) return false;
    LegOutcome o = RunOverWire(server.port(), /*tx_count=*/40, 0);
    engine.Shutdown();
    server.Stop();
    // Every client finished (shed means retry-later, not starvation)...
    ok &= o.committed == kSessions * 40;
    // ...and the undersized budget really shed work onto the slow path.
    ok &= metrics.server_shed.value() > 0;
    ok &= o.sheds_observed == metrics.server_shed.value();
    emit("wire_shed", o, metrics);
  }

  // --- long-haul leg: retirement keeps the registered-tx scan flat ---------
  // One session drives 10^4 sequential transactions through the server with
  // transaction retirement on. Every committed id retires immediately
  // (independent transactions), so candidate gathering scans an O(1) live
  // set no matter how many ids the server has ever allocated — the
  // controller-id scaling wall the zero-think legs deliberately stay below.
  // Gate: the last-decile per-transaction cost stays within 2.5x of the
  // first decile, and every committed transaction actually retired.
  {
    constexpr int kLongHaulTx = 10'000;
    constexpr int kDecile = kLongHaulTx / 10;
    ProtocolMetrics metrics;
    EngineOptions options = BaseEngineOptions(&metrics);
    options.retire_terminated_tx = true;
    Engine engine(options);
    ServerOptions server_options;
    server_options.num_workers = 2;
    SessionServer server(&engine, server_options);
    if (!server.Start().ok()) return false;
    Client client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return false;
    if (!client.StagePredicates(SessionInput(0), Predicate::True()).ok()) {
      return false;
    }
    int committed = 0;
    std::vector<double> decile_secs;
    Clock::time_point decile_start = Clock::now();
    for (int i = 0; i < kLongHaulTx; ++i) {
      if (!client.BeginStaged("long_haul", {}).ok()) break;
      EntityId e = static_cast<EntityId>(i % kEntitiesPerSession);
      if (!client.Write(e, i + 1).ok()) break;
      if (!client.Commit().ok()) break;
      ++committed;
      if ((i + 1) % kDecile == 0) {
        Clock::time_point now = Clock::now();
        decile_secs.push_back(
            std::chrono::duration<double>(now - decile_start).count());
        decile_start = now;
      }
    }
    engine.Shutdown();
    server.Stop();
    double first_us = decile_secs.empty()
                          ? 0
                          : decile_secs.front() * 1e6 / kDecile;
    double last_us = decile_secs.empty()
                         ? 0
                         : decile_secs.back() * 1e6 / kDecile;
    double scan_ratio = first_us > 0 ? last_us / first_us : 0;
    int64_t retired = metrics.engine_retired_tx.value();
    Json row = Json::Object();
    row["name"] = "wire_long_haul";
    row["threads"] = 1;
    row["committed"] = committed;
    row["retired_tx"] = retired;
    row["first_decile_us_per_tx"] = first_us;
    row["last_decile_us_per_tx"] = last_us;
    row["scan_cost_ratio"] = scan_ratio;
    report->AddResult(std::move(row));
    std::printf("%16s %6d | %9d tx  %8lld retired  %6.1f -> %6.1f us/tx "
                "(%.2fx, required <= 2.5x)\n",
                "wire_long_haul", 1, committed,
                static_cast<long long>(retired), first_us, last_us,
                scan_ratio);
    ok &= committed == kLongHaulTx;
    ok &= retired == committed;
    ok &= scan_ratio > 0 && scan_ratio <= 2.5;
  }

  // --- the gate ------------------------------------------------------------
  double ratio = inproc_think > 0 ? wire_think / inproc_think : 0;
  report->config()["wire_vs_inproc_think"] = ratio;
  std::printf("wire/in-process throughput at %d think-paced sessions: %.2fx "
              "(required: >= 0.5x)\n", kSessions, ratio);
  ok &= ratio >= 0.5;
  return ok;
}

}  // namespace
}  // namespace nonserial

int main(int argc, char** argv) {
  return nonserial::BenchMain(argc, argv, "server", [](auto& options,
                                                       auto* report) {
    return nonserial::RunBench(options, report);
  });
}
