// Experiment E9 — google-benchmark micro-benchmarks of the protocol hot
// paths: the Figure 3 lock manager (Rv/R/W), the classical S/X table, and
// the version store operations that back every simulated access.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "protocol/ks_lock_manager.h"
#include "protocol/sx_lock_table.h"
#include "storage/version_store.h"

namespace nonserial {
namespace {

void BM_KsLock_RvAcquireRelease(benchmark::State& state) {
  KsLockManager locks(1024);
  int tx = 0;
  for (auto _ : state) {
    EntityId e = tx % 1024;
    benchmark::DoNotOptimize(locks.Acquire(tx, e, KsLockMode::kRv));
    locks.ReleaseAll(tx);
    ++tx;
  }
}
BENCHMARK(BM_KsLock_RvAcquireRelease);

void BM_KsLock_WriteReEvalPath(benchmark::State& state) {
  // `readers` transactions hold Rv locks; each W acquisition returns
  // kReEval and must enumerate them (the Figure 4 audience).
  const int readers = static_cast<int>(state.range(0));
  KsLockManager locks(16);
  for (int r = 0; r < readers; ++r) {
    locks.Acquire(r + 1000, 0, KsLockMode::kRv);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(locks.Acquire(1, 0, KsLockMode::kW));
    benchmark::DoNotOptimize(locks.Readers(0));
    locks.ReleaseWrite(1, 0);
  }
}
BENCHMARK(BM_KsLock_WriteReEvalPath)->Arg(1)->Arg(8)->Arg(64);

void BM_KsLock_UpgradeToRead(benchmark::State& state) {
  KsLockManager locks(1);
  locks.Acquire(1, 0, KsLockMode::kRv);
  for (auto _ : state) {
    benchmark::DoNotOptimize(locks.UpgradeToRead(1, 0));
  }
}
BENCHMARK(BM_KsLock_UpgradeToRead);

void BM_SxLock_SharedAcquireRelease(benchmark::State& state) {
  SxLockTable table(1024);
  std::vector<int> conflicts;
  int tx = 0;
  for (auto _ : state) {
    int key = tx % 1024;
    benchmark::DoNotOptimize(
        table.TryAcquire(tx, key, SxLockTable::Mode::kShared, &conflicts));
    table.Release(tx, key);
    ++tx;
  }
}
BENCHMARK(BM_SxLock_SharedAcquireRelease);

void BM_SxLock_ConflictDetection(benchmark::State& state) {
  const int holders = static_cast<int>(state.range(0));
  SxLockTable table(1);
  std::vector<int> conflicts;
  for (int h = 0; h < holders; ++h) {
    table.TryAcquire(h + 100, 0, SxLockTable::Mode::kShared, &conflicts);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.TryAcquire(1, 0, SxLockTable::Mode::kExclusive, &conflicts));
  }
}
BENCHMARK(BM_SxLock_ConflictDetection)->Arg(1)->Arg(16)->Arg(128);

void BM_VersionStore_Append(benchmark::State& state) {
  VersionStore store(ValueVector(64, 0));
  int writer = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Append(writer % 64, writer, writer));
    ++writer;
  }
}
BENCHMARK(BM_VersionStore_Append);

void BM_VersionStore_LatestIndexBy(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  VersionStore store(ValueVector(1, 0));
  for (int i = 0; i < chain_length; ++i) store.Append(0, i, i % 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.LatestIndexBy(0, 3));
  }
}
BENCHMARK(BM_VersionStore_LatestIndexBy)->Arg(8)->Arg(64)->Arg(512);

void BM_VersionStore_CommitWriter(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    VersionStore store(ValueVector(64, 0));
    for (int i = 0; i < 256; ++i) {
      store.Append(static_cast<EntityId>(rng.Uniform(64)), i, i % 16);
    }
    state.ResumeTiming();
    store.CommitWriter(7);
  }
}
BENCHMARK(BM_VersionStore_CommitWriter);

}  // namespace
}  // namespace nonserial

// Custom main instead of BENCHMARK_MAIN so this binary honors the repo-wide
// `--json` convention: it maps to google-benchmark's own JSON reporter
// (one document on stdout), which the CI json.tool gate accepts like the
// run-report documents of the other benches.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char json_flag[] = "--benchmark_format=json";
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::strcmp(args[i], "--json") == 0) args[i] = json_flag;
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
